"""``python -m repro check`` — run the differential-testing oracle.

Modes
-----
* default          run every suite on the seeded check corpus
* ``--quick``      subsample to small matrices (CI tier, a few seconds)
* ``--suites``     comma-separated subset (features, kernels,
                   permutations, reorder-fastpath, model, artifacts,
                   serving, storage)
* ``--mutation-smoke``  inject the seeded faults of
  :mod:`repro.check.mutation` and assert each one is caught — a test
  of the oracle layer itself
* ``--json PATH``  additionally write the machine-readable report

Exit status is 0 iff every invariant held (or, under
``--mutation-smoke``, iff every fault was caught).
"""

from __future__ import annotations

import json

from ..obs import get_logger
from ..obs.trace import span
from .corpus import check_corpus, edge_corpus
from .findings import CheckReport

log = get_logger("check")

#: matrices larger than this are dropped under ``--quick`` (the
#: permutation suite on the full tiny tier costs ~90 s; the quick tier
#: must stay CI-cheap)
QUICK_MAX_ROWS = 256

SUITES = ("features", "kernels", "permutations", "reorder-fastpath",
          "model", "artifacts", "serving", "storage")


def _run_suite(name: str, matrices, seed: int) -> CheckReport:
    if name == "features":
        from .features import check_features
        return check_features(matrices)
    if name == "kernels":
        from .kernels import check_kernels
        return check_kernels(matrices, seed=seed)
    if name == "permutations":
        from .permutations import check_permutations
        return check_permutations(matrices, seed=seed)
    if name == "reorder-fastpath":
        from .fastpath import check_fastpath
        return check_fastpath(matrices)
    if name == "model":
        from .model import check_model
        return check_model(matrices)
    if name == "artifacts":
        from .artifacts import check_artifacts
        return check_artifacts(seed=seed)
    if name == "serving":
        from .serving import check_serving
        return check_serving(seed=seed)
    if name == "storage":
        from .storage import check_storage
        return check_storage(seed=seed)
    raise ValueError(f"unknown check suite {name!r}")


def run_check(suites=SUITES, seed: int = 0, quick: bool = False,
              json_path: str | None = None) -> CheckReport:
    """Run the selected suites and return the merged report."""
    import time

    matrices = check_corpus(seed) + edge_corpus(seed)
    if quick:
        kept = [(n, a) for n, a in matrices if a.nrows <= QUICK_MAX_ROWS]
        log.info("quick mode: %d of %d matrices (nrows <= %d)",
                 len(kept), len(matrices), QUICK_MAX_ROWS)
        matrices = kept
    report = CheckReport(suites=[])
    t0 = time.perf_counter()
    with span("check", quick=quick, seed=seed):
        for name in suites:
            t1 = time.perf_counter()
            part = _run_suite(name, matrices, seed)
            log.info("suite %-12s %5d case(s) %3d finding(s) %6.2fs",
                     name, part.cases, len(part.findings),
                     time.perf_counter() - t1)
            report.merge(part)
    report.seconds = time.perf_counter() - t0
    if json_path:
        with open(json_path, "wt") as f:
            json.dump(report.to_dict(), f, indent=2)
        log.info("wrote %s", json_path)
    return report


def main(args) -> int:
    if args.mutation_smoke:
        from .mutation import run_mutation_smoke
        result = run_mutation_smoke(seed=args.seed)
        if args.json:
            with open(args.json, "wt") as f:
                json.dump(result.to_dict(), f, indent=2)
        print(result.render())
        return 0 if result.ok else 1

    suites = SUITES
    if args.suites:
        suites = tuple(s.strip() for s in args.suites.split(",") if s.strip())
        unknown = [s for s in suites if s not in SUITES]
        if unknown:
            log.error("unknown suite(s) %s; valid: %s",
                      unknown, ", ".join(SUITES))
            return 2
    report = run_check(suites=suites, seed=args.seed, quick=args.quick,
                       json_path=args.json)
    print(report.render())
    return 0 if report.ok else 1


def add_check_parser(sub) -> None:
    """Attach the ``check`` subcommand to the main CLI's subparsers."""
    p = sub.add_parser(
        "check",
        help="differential tests and invariant checks (oracle layer)")
    p.add_argument("--quick", action="store_true",
                   help=f"only matrices with <= {QUICK_MAX_ROWS} rows "
                        "(CI tier)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--suites", default=None,
                   help="comma-separated subset of: " + ", ".join(SUITES))
    p.add_argument("--mutation-smoke", action="store_true",
                   help="inject seeded faults and assert each is caught")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the machine-readable report")
    p.set_defaults(func=main)
