"""Seeded corpora the check suites run on.

Two layers:

* :func:`check_corpus` — the generator suite's ``tiny`` tier (the same
  matrices the sweep smoke jobs use), so the oracle pass exercises the
  exact structures the study sweeps.
* :func:`edge_corpus` — adversarial shapes the tiny tier does not
  contain: empty matrices, single rows, empty rows, rectangular
  matrices, and CSR containers carrying explicitly stored zeros.  These
  pin the edge-case fixes (nthreads > nrows schedules, explicit-zero
  features) that this layer was built to catch.

Everything is deterministic in ``seed``; the differential checks rely
on being able to rebuild the identical corpus from scratch.
"""

from __future__ import annotations

import numpy as np

from ..generators import build_corpus
from ..matrix import coo_from_arrays, csr_from_coo, csr_from_dense
from ..matrix.csr import CSRMatrix


def check_corpus(seed: int = 0, tier: str = "tiny") -> list:
    """``[(name, matrix), ...]`` from the generator suite."""
    return [(e.name, e.matrix) for e in build_corpus(tier, seed=seed)]


def _with_explicit_zeros(a: CSRMatrix, rng: np.random.Generator) -> CSRMatrix:
    """A copy of ``a`` with ~25% of its stored values forced to 0.0."""
    values = a.values.copy()
    idx = rng.choice(a.nnz, size=max(1, a.nnz // 4), replace=False)
    values[idx] = 0.0
    return CSRMatrix(a.nrows, a.ncols, a.rowptr, a.colidx, values)


def edge_corpus(seed: int = 0) -> list:
    """``[(name, matrix), ...]`` of adversarial edge-case structures."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((6, 6)) < 0.4) * rng.standard_normal((6, 6))
    small = csr_from_dense(dense)
    out = [
        ("empty-5x5", csr_from_coo(coo_from_arrays(5, 5, [], []))),
        ("single-entry-1x1", csr_from_dense(np.array([[2.5]]))),
        ("single-dense-row", csr_from_dense(
            np.vstack([np.ones((1, 6)), np.zeros((5, 6))]))),
        # rows 2..3 empty: threads owning them stay in the partition
        ("empty-middle-rows", csr_from_coo(coo_from_arrays(
            6, 6, [0, 0, 1, 4, 5, 5], [0, 3, 1, 4, 2, 5],
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))),
        ("rect-3x7", csr_from_dense(
            (rng.random((3, 7)) < 0.5).astype(float))),
        ("explicit-zeros", _with_explicit_zeros(small, rng)),
    ]
    return out
