"""Check suite: the out-of-core storage layer (:mod:`repro.storage`).

Differential invariants over real snapshot builds in a temporary
directory:

* **roundtrip** — write → memmap-open returns bit-identical arrays;
* **content addressing** — same bytes, same address; different seed,
  different address; a rebuilt (quarantined) snapshot converges to the
  uninterrupted build's address;
* **corruption detection** — a flipped byte fails CRC verification, a
  truncated array fails the size check, and a snapshot whose spec
  changed is rebuilt rather than reused;
* **transport equivalence** — a sweep over memmap-attached stored
  matrices produces records bit-identical to the same sweep over the
  in-RAM corpus.

The suite is the detection target of the three storage faults in
:mod:`repro.check.mutation` (stale CRC accepted, rowptr/colidx
desync, snapshot reuse across a seed change).
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..errors import ReproError
from ..storage import format as fmt
from ..storage import snapshot as snap_mod
from .findings import CheckReport

SUITE = "storage"

#: cheap deterministic slice of the tiny tier — two banded matrices
#: are enough to exercise every format/snapshot path
_SPEC = dict(tier="tiny", limit=2, groups=("Banded",))


def _ensure(path, seed, **overrides):
    spec = dict(_SPEC)
    spec.update(overrides)
    return snap_mod.ensure_corpus_snapshot(path, seed=seed, **spec)


def _records(corpus, seed):
    """Run a tiny deterministic sweep and return its sorted records."""
    from ..harness.engine import SweepEngine
    from ..machine import get_architecture

    engine = SweepEngine(corpus, [get_architecture("Rome")],
                        ["RCM", "Gray"], kernels=("1d",), seed=seed)
    result = engine.run()
    recs = sorted((r.matrix, r.ordering, r.kernel, r.architecture,
                   r.gflops_max, r.gflops_mean, r.seconds)
                  for r in result.records)
    return recs, result.failed


def check_storage(seed: int = 0) -> CheckReport:
    report = CheckReport(suites=[SUITE])
    checks = (_check_roundtrip, _check_content_address,
              _check_corruption, _check_quarantine, _check_seed_change,
              _check_transport_equivalence, _check_attach_stats)
    with tempfile.TemporaryDirectory(prefix="repro_check_storage_") as tmp:
        for fn in checks:
            try:
                fn(report, tmp, seed)
            except ReproError as exc:
                # a storage layer broken enough to *raise* out of a
                # sub-check is a finding, not a suite crash — the
                # mutation smoke relies on faults degrading gracefully
                report.case()
                report.fail(SUITE, "storage-suite-error",
                            fn.__name__.lstrip("_"),
                            f"{type(exc).__name__}: {exc}")
    return report


def _check_roundtrip(report, tmp, seed) -> None:
    """Stored matrices reopen bit-identically through the memmap path."""
    from ..generators import build_corpus

    corpus = build_corpus("tiny", seed=seed, groups=("Banded",))[:2]
    for entry in corpus:
        path = os.path.join(tmp, f"rt_{entry.name}")
        subject = f"matrix={entry.name}"
        try:
            fmt.write_matrix(path, entry.matrix,
                             meta={"name": entry.name})
            b = fmt.open_matrix(path, verify="crc")
        except ReproError as exc:
            report.case()
            report.fail(SUITE, "snapshot-roundtrip-identical", subject,
                        f"write/open raised {type(exc).__name__}: {exc}")
            continue
        a = entry.matrix
        same = (a.nrows == b.nrows and a.ncols == b.ncols
                and np.array_equal(a.rowptr, b.rowptr)
                and np.array_equal(a.colidx, b.colidx)
                and np.array_equal(a.values, b.values))
        report.check(same, SUITE, "snapshot-roundtrip-identical",
                     subject,
                     "memmap-opened arrays differ from the written "
                     "matrix")
        from ..obs.cachestats import mapped_nbytes

        report.check(mapped_nbytes(b.values) == b.values.nbytes, SUITE,
                     "snapshot-roundtrip-identical", subject,
                     "open_matrix returned heap arrays, not memmap "
                     "views (the zero-copy transport would silently "
                     "materialise)")


def _check_content_address(report, tmp, seed) -> None:
    """Same bytes hash to the same address; different bytes don't."""
    from ..generators import build_corpus

    entry = build_corpus("tiny", seed=seed, groups=("Banded",))[0]
    sig1 = fmt.write_matrix(os.path.join(tmp, "ca_1"), entry.matrix)
    sig2 = fmt.write_matrix(os.path.join(tmp, "ca_2"), entry.matrix)
    report.check(sig1 == sig2, SUITE, "snapshot-content-address",
                 f"matrix={entry.name}",
                 f"two writes of the same matrix got different "
                 f"addresses {sig1} vs {sig2}")
    other = build_corpus("tiny", seed=seed + 1, groups=("Banded",))[0]
    sig3 = fmt.write_matrix(os.path.join(tmp, "ca_3"), other.matrix)
    report.check(sig1 != sig3, SUITE, "snapshot-content-address",
                 f"matrix={entry.name}",
                 f"different matrix content hashed to the same "
                 f"address {sig1}")


def _check_corruption(report, tmp, seed) -> None:
    """A flipped byte must fail CRC; a truncated array must fail the
    size check."""
    from ..generators import build_corpus

    entry = build_corpus("tiny", seed=seed, groups=("Banded",))[0]
    subject = f"matrix={entry.name}"

    path = os.path.join(tmp, "corrupt")
    fmt.write_matrix(path, entry.matrix)
    vpath = os.path.join(path, "values.bin")
    with open(vpath, "r+b") as fh:
        fh.seek(8)
        byte = fh.read(1)
        fh.seek(8)
        fh.write(bytes([byte[0] ^ 0xFF]))
    report.check(bool(fmt.verify_matrix(path, level="crc")), SUITE,
                 "snapshot-detects-corruption", subject,
                 "a flipped byte in values.bin passed level='crc' "
                 "verification")

    path = os.path.join(tmp, "torn")
    fmt.write_matrix(path, entry.matrix)
    cpath = os.path.join(path, "colidx.bin")
    with open(cpath, "r+b") as fh:
        fh.truncate(os.path.getsize(cpath) - 8)
    report.check(bool(fmt.verify_matrix(path, level="size")), SUITE,
                 "snapshot-detects-truncation", subject,
                 "a truncated colidx.bin passed level='size' "
                 "verification (rowptr/colidx/values out of sync)")


def _check_quarantine(report, tmp, seed) -> None:
    """A snapshot killed mid-write is quarantined and regenerated to
    the uninterrupted build's content address."""
    clean_dir = os.path.join(tmp, "q_clean")
    torn_dir = os.path.join(tmp, "q_torn")
    clean = _ensure(clean_dir, seed)
    torn = _ensure(torn_dir, seed)
    victim = torn.entries[0]
    # simulate a mid-write kill: one matrix torn, the index (written
    # last in a real build) gone
    vpath = os.path.join(victim.path, "values.bin")
    with open(vpath, "r+b") as fh:
        fh.truncate(os.path.getsize(vpath) // 2)
    os.remove(os.path.join(torn_dir, "corpus.json"))
    try:
        repaired = _ensure(torn_dir, seed)
    except ReproError as exc:
        report.case()
        report.fail(SUITE, "snapshot-quarantine-regenerates",
                    f"matrix={victim.name}",
                    f"repair raised {type(exc).__name__}: {exc}")
        return
    qdir = os.path.join(torn_dir, "_quarantine")
    report.check(os.path.isdir(qdir) and os.listdir(qdir), SUITE,
                 "snapshot-quarantine-regenerates",
                 f"matrix={victim.name}",
                 "the torn matrix was not quarantined (nothing under "
                 "_quarantine/)")
    report.check(repaired.signature == clean.signature, SUITE,
                 "snapshot-quarantine-regenerates",
                 f"matrix={victim.name}",
                 f"regenerated snapshot address {repaired.signature} "
                 f"!= uninterrupted build {clean.signature} "
                 "(regeneration is not deterministic)")


def _check_seed_change(report, tmp, seed) -> None:
    """Re-ensuring a snapshot under a different seed must rebuild it,
    not reuse the stale matrices."""
    path = os.path.join(tmp, "seeded")
    old = _ensure(path, seed)
    new = _ensure(path, seed + 1)
    fresh = _ensure(os.path.join(tmp, "seeded_fresh"), seed + 1)
    report.check(new.signature != old.signature, SUITE,
                 "snapshot-seed-changes-address", f"dir={path}",
                 f"seed {seed}->{seed + 1} left the corpus address at "
                 f"{old.signature} — stale matrices were reused across "
                 "a generator-seed change")
    report.check(new.signature == fresh.signature, SUITE,
                 "snapshot-seed-changes-address", f"dir={path}",
                 f"rebuilt-in-place address {new.signature} != fresh "
                 f"seed-{seed + 1} build {fresh.signature}")


def _check_transport_equivalence(report, tmp, seed) -> None:
    """A sweep over memmap-attached stored entries must be
    bit-identical to the same sweep over the in-RAM corpus."""
    from ..generators import build_corpus

    inram = build_corpus("tiny", seed=seed, groups=("Banded",))[:2]
    stored = _ensure(os.path.join(tmp, "sweep"), seed)
    ref_recs, ref_failed = _records(inram, seed)
    mm_recs, mm_failed = _records(list(stored.entries), seed)
    subject = "corpus=tiny/Banded[:2] arch=Rome kernel=1d"
    report.check(not ref_failed and not mm_failed, SUITE,
                 "memmap-sweep-matches-inram", subject,
                 f"sweep failures: inram={len(ref_failed)} "
                 f"memmap={len(mm_failed)}")
    report.check(mm_recs == ref_recs, SUITE,
                 "memmap-sweep-matches-inram", subject,
                 "records over memmap-attached matrices differ from "
                 "the in-RAM corpus (the transport changed results)")


def _check_attach_stats(report, tmp, seed) -> None:
    """The attach memo reports mapped (not resident) bytes in the
    unified cache-stats schema."""
    from ..obs.cachestats import CACHE_STATS_KEYS

    stats = fmt.attach_cache_stats()
    subject = "cache=storage.attach"
    missing = [k for k in CACHE_STATS_KEYS if k not in stats]
    report.check(not missing, SUITE, "cache-stats-schema", subject,
                 f"missing shared keys {missing}")
    # the transport-equivalence sweep above attached matrices in this
    # process, so the memo must be non-empty and billed as mapped
    report.check(stats.get("mapped_bytes", 0) > 0
                 and stats.get("size_bytes", 1) == 0,
                 SUITE, "cache-stats-schema", subject,
                 f"memmap attachments billed wrongly: size_bytes="
                 f"{stats.get('size_bytes')} mapped_bytes="
                 f"{stats.get('mapped_bytes')} (mapped arrays must "
                 "not count as resident)")
