"""Differential checks of the performance model's fast paths.

The model has two layers of "clever" code that must stay bit-identical
to their naive definitions:

* the **reuse primitives** (:mod:`repro.machine.reuse`) — one-argsort
  previous-occurrence arrays, vectorised per-window distinct counts and
  merge-counted LRU stack distances.  Each is cross-validated against a
  naive per-element Python oracle (dict of last positions, per-window
  sets, an explicit LRU stack);
* the **batched fast path** — ``predict_many`` / ``simulate_many``
  share one :class:`ReuseStats` pass and memoised schedules; their
  output must equal naive per-cell evaluation with ``fastpath=False``
  reference models, cell by cell, bit for bit.

The memoised :class:`ReuseStats` container is additionally checked
against a from-scratch rebuild on an equal-but-distinct matrix object,
so a stale or cross-wired memo entry cannot hide behind its own
consistency.
"""

from __future__ import annotations

import numpy as np

from ..machine import bench as bench_mod
from ..machine import model as model_mod
from ..machine import reuse as reuse_mod
from ..machine.arch import get_architecture
from ..matrix.csr import CSRMatrix
from ..obs.trace import span
from ..spmv import schedule_1d, schedule_2d
from .findings import CheckReport

SUITE = "model"

#: architectures the differential pass evaluates (one Intel, one AMD,
#: one ARM keeps the pass cheap while covering distinct cache shapes)
CHECK_ARCHS = ("Skylake", "Rome", "TX2")


def _naive_prev(stream) -> np.ndarray:
    last: dict = {}
    prev = np.full(len(stream), -1, dtype=np.int64)
    for i, v in enumerate(stream):
        prev[i] = last.get(int(v), -1)
        last[int(v)] = i
    return prev


def _naive_windowed_distinct(stream, window: int) -> int:
    total = 0
    for start in range(0, len(stream), window):
        total += len(set(int(v) for v in stream[start:start + window]))
    return total


def _naive_stack_distances(stream) -> np.ndarray:
    stack: list = []
    dist = np.full(len(stream), -1, dtype=np.int64)
    for i, v in enumerate(stream):
        v = int(v)
        if v in stack:
            dist[i] = stack[::-1].index(v)  # distinct values above v
            stack.remove(v)
        stack.append(v)  # top of stack = end of list
    return dist


def _fresh_copy(a: CSRMatrix) -> CSRMatrix:
    """An equal matrix sharing no object identity with ``a`` — a memo
    keyed or cached on the original object cannot serve it."""
    return CSRMatrix(a.nrows, a.ncols, a.rowptr.copy(),
                     a.colidx.copy(), a.values.copy())


def check_reuse_primitives(matrices, words_per_line: int = 8) -> CheckReport:
    """Reuse-statistic primitives vs naive per-element oracles."""
    report = CheckReport(suites=[SUITE])
    with span("check.model.reuse"):
        for name, a in matrices:
            subject = f"matrix={name}"
            lines = a.colidx // words_per_line
            small = lines[:512]  # the list-based oracles are O(n^2)

            prev = reuse_mod.prev_occurrence(small)
            want = _naive_prev(small)
            report.check(
                bool(np.array_equal(prev, want)), SUITE,
                "prev-occurrence-matches-naive", subject,
                "argsort-based previous-occurrence differs from the "
                "dict-of-last-positions oracle")

            for window in (1, 7, 64):
                got = reuse_mod.windowed_distinct_loads(prev, window)
                naive = _naive_windowed_distinct(small, window)
                report.check(
                    got == naive, SUITE,
                    "windowed-distinct-matches-naive",
                    f"{subject} window={window}",
                    f"vectorised count {got} != per-window set oracle "
                    f"{naive}")

            got = reuse_mod.stack_distances(prev)
            naive = _naive_stack_distances(small)
            report.check(
                bool(np.array_equal(got, naive)), SUITE,
                "stack-distance-matches-naive", subject,
                "merge-counted stack distances differ from the "
                "explicit-LRU-stack oracle")

            # the memo must serve statistics of *this* matrix: compare
            # against a from-scratch rebuild on an equal fresh object
            stats = reuse_mod.ReuseStats.for_matrix(a)
            served = stats.prev(words_per_line)
            rebuilt = reuse_mod.ReuseStats(
                _fresh_copy(a)).prev(words_per_line)
            report.check(
                bool(np.array_equal(served, rebuilt)), SUITE,
                "reuse-memo-matches-rebuild", subject,
                "memoised previous-occurrence array differs from a "
                "from-scratch rebuild (stale or cross-wired memo)")
            report.check(
                served is stats.prev(words_per_line), SUITE,
                "reuse-memo-is-stable", subject,
                "repeated memo reads returned different objects")
    return report


def check_model_fastpath(matrices, architectures=CHECK_ARCHS) -> CheckReport:
    """Batched fast-path evaluation vs naive per-cell reference."""
    archs = [get_architecture(n) for n in architectures]
    report = CheckReport(suites=[SUITE])
    with span("check.model.fastpath"):
        for name, a in matrices:
            if a.nnz == 0:
                continue  # the model is defined over nonempty matrices
            preds = model_mod.predict_many(a, archs, kernels=("1d", "2d"))
            for arch in archs:
                for kernel in ("1d", "2d"):
                    subject = (f"matrix={name} arch={arch.name} "
                               f"kernel={kernel}")
                    reference = model_mod.PerfModel(
                        arch, fastpath=False)
                    schedule = (schedule_1d(a, arch.threads)
                                if kernel == "1d"
                                else schedule_2d(a, arch.threads))
                    want = reference.predict(_fresh_copy(a), schedule)
                    got = preds[(arch.name, kernel, arch.threads)]
                    report.check(
                        got.seconds == want.seconds
                        and got.x_line_loads == want.x_line_loads
                        and bool(np.array_equal(got.thread_seconds,
                                                want.thread_seconds)),
                        SUITE, "fastpath-matches-naive-model", subject,
                        f"fastpath seconds={got.seconds!r} "
                        f"x_line_loads={got.x_line_loads} vs naive "
                        f"{want.seconds!r}/{want.x_line_loads}")

            batched = bench_mod.simulate_many(
                a, archs, kernels=("1d", "2d"), matrix_name=name,
                ordering_name="original")
            single = [bench_mod.simulate_measurement(
                          a, arch, kernel, name, "original")
                      for arch in archs for kernel in ("1d", "2d")]
            report.check(
                batched == single, SUITE,
                "simulate-many-matches-per-cell", f"matrix={name}",
                "batched measurement records differ from per-cell "
                "simulate_measurement calls")
    return report


def check_model(matrices, architectures=CHECK_ARCHS) -> CheckReport:
    """Both model sub-suites on one corpus."""
    report = check_reuse_primitives(matrices)
    return report.merge(check_model_fastpath(matrices, architectures))
