"""Fast-path ⇄ reference equivalence oracle (``reorder-fastpath``).

Every reordering hot path was rewritten on bulk numpy/list primitives
(PR 7) with the promise of **permutation-exact** agreement with the
scalar implementations it replaced.  This suite holds the promise to
account: for each square corpus matrix and each vectorised ordering it
recomputes the permutation through the always-scalar ``*_reference``
entry point and asserts bit-identity — not similarity, not equal
quality metrics: ``np.array_equal`` on the permutation itself.

Two invariants:

* ``fastpath-matches-reference`` — the dispatching entry point (fast
  path on) and its ``*_reference`` twin return identical permutations;
* ``fastpath-deterministic`` — the fast path is a pure function of its
  inputs (two computations agree), so the equivalence above cannot
  rot into a flaky coin-flip.

The seeded mutation faults (``repro check --mutation-smoke``) patch
off-by-one BFS levels, a stale approximate-degree discount and a
dropped FM gain update into the fast paths and assert this suite
catches each one — see :mod:`repro.check.mutation`.
"""

from __future__ import annotations

import numpy as np

from ..obs.trace import span
from .findings import CheckReport

SUITE = "reorder-fastpath"

#: matrices above this row count are skipped (the scalar references
#: are the slow side; the oracle must stay CI-cheap)
MAX_ROWS = 1500

#: part count for GP/HP during the check (small keeps the multilevel
#: pipelines fast while still exercising coarsen/refine/uncoarsen)
CHECK_NPARTS = 4


def _pairs():
    """(ordering name, fast fn, reference fn) triples, resolved lazily
    so mutation patches on the underlying modules are honoured."""
    from ..reorder.amd import amd_ordering, amd_ordering_reference
    from ..reorder.gp import gp_ordering, gp_ordering_reference
    from ..reorder.gray import gray_ordering, gray_ordering_reference
    from ..reorder.hp import hp_ordering, hp_ordering_reference
    from ..reorder.nd import nd_ordering, nd_ordering_reference
    from ..reorder.rcm import rcm_ordering, rcm_ordering_reference

    return (
        ("RCM", lambda a: rcm_ordering(a),
         lambda a: rcm_ordering_reference(a)),
        ("AMD", lambda a: amd_ordering(a),
         lambda a: amd_ordering_reference(a)),
        ("Gray", lambda a: gray_ordering(a),
         lambda a: gray_ordering_reference(a)),
        ("ND", lambda a: nd_ordering(a, seed=0),
         lambda a: nd_ordering_reference(a, seed=0)),
        ("GP", lambda a: gp_ordering(a, nparts=CHECK_NPARTS, seed=0),
         lambda a: gp_ordering_reference(a, nparts=CHECK_NPARTS, seed=0)),
        ("HP", lambda a: hp_ordering(a, nparts=CHECK_NPARTS, seed=0),
         lambda a: hp_ordering_reference(a, nparts=CHECK_NPARTS, seed=0)),
    )


def _first_divergence(fast: np.ndarray, ref: np.ndarray) -> str:
    if fast.size != ref.size:
        return f"sizes differ: fast {fast.size} vs reference {ref.size}"
    where = np.flatnonzero(fast != ref)
    if where.size == 0:  # detail strings are built eagerly on success
        return "identical"
    return (f"{where.size}/{ref.size} positions differ, first at "
            f"index {int(where[0])}: fast {int(fast[where[0]])} vs "
            f"reference {int(ref[where[0]])}")


def check_fastpath(matrices, orderings=None) -> CheckReport:
    """Assert fast ≡ reference permutations over ``matrices``.

    ``matrices`` is the usual ``[(name, CSRMatrix), ...]`` list; only
    square matrices within :data:`MAX_ROWS` participate (reorderings
    are defined on square matrices).  ``orderings`` restricts the
    checked set by name.
    """
    report = CheckReport(suites=[SUITE])
    with span("check.fastpath"):
        for mat_name, a in matrices:
            if not a.is_square or a.nrows > MAX_ROWS:
                continue
            for name, fast_fn, ref_fn in _pairs():
                if orderings is not None and name not in orderings:
                    continue
                subject = f"matrix={mat_name} ordering={name}"
                try:
                    fast = fast_fn(a).perm
                    again = fast_fn(a).perm
                    ref = ref_fn(a).perm
                except Exception as exc:  # noqa: BLE001 - report
                    report.case()
                    report.fail(SUITE, "ordering-crash", subject,
                                f"{type(exc).__name__}: {exc}")
                    continue
                report.check(
                    bool(np.array_equal(fast, again)),
                    SUITE, "fastpath-deterministic", subject,
                    "two fast-path computations disagree: "
                    + _first_divergence(fast, again))
                report.check(
                    bool(np.array_equal(fast, ref)),
                    SUITE, "fastpath-matches-reference", subject,
                    "fast path diverges from the scalar reference: "
                    + _first_divergence(fast, ref))
    return report
