"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Specific subclasses
exist for the major subsystems; they carry enough context in their
message to diagnose the failing input without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class MatrixFormatError(ReproError):
    """A sparse matrix container was constructed from inconsistent data.

    Examples: row pointers that are not monotone, column indices out of
    range, value/index length mismatch, or a Matrix Market file whose
    header does not match its body.
    """


class PermutationError(ReproError):
    """A permutation vector is not a valid bijection on ``range(n)``."""


class PartitionError(ReproError):
    """A (hyper)graph partitioner received an invalid request or produced
    an invalid partition (e.g. a part count below 1, or an assignment
    vector with out-of-range part ids)."""


class ReorderingError(ReproError):
    """A reordering algorithm could not produce an ordering for the given
    matrix (e.g. a symmetric-only method applied without symmetrisation)."""


class ScheduleError(ReproError):
    """An SpMV thread schedule is inconsistent with the matrix it was
    built for (wrong nnz coverage, overlapping ranges, bad thread count)."""


class ArchitectureError(ReproError):
    """An unknown architecture name was requested, or an architecture
    description is internally inconsistent (e.g. zero cores)."""


class CholeskyError(ReproError):
    """Symbolic Cholesky analysis was attempted on an unsuitable matrix
    (non-square or structurally unsymmetric pattern)."""


class GeneratorError(ReproError):
    """A synthetic matrix generator received out-of-domain parameters."""


class HarnessError(ReproError):
    """The experiment harness was misconfigured (unknown experiment id,
    empty corpus, missing ordering results, ...)."""


class StorageError(ReproError):
    """An on-disk matrix snapshot is unreadable or fails verification
    (missing/corrupt header, array length mismatch, CRC failure, or a
    content-address that does not match the snapshot's data)."""


class SolverError(ReproError):
    """An iterative solver received an unsolvable input (non-square
    operator, zero diagonal for Jacobi, non-finite right-hand side) or
    broke down mid-iteration (CG on an indefinite operator, diverging
    iterates)."""


class AdvisorError(ReproError):
    """The reordering advisor was asked to predict without training
    data, fed an inconsistent dataset, or given a model artifact whose
    version/feature layout does not match this code."""
