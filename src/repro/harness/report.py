"""Plain-text rendering of experiment results.

Mirrors how the paper's artifact ships data: aligned text tables that
can be eyeballed or fed to gnuplot.  Boxplot figures are rendered as
ASCII five-number summaries.
"""

from __future__ import annotations

import numpy as np

from ..analysis.perfprofile import profile_at
from ..util.tables import format_boxplot_rows, format_table
from .experiments import REORDERINGS, SpeedupStudy


def render_geomean_table(study: SpeedupStudy, architectures,
                         title: str) -> str:
    """Tables 3/4: geometric-mean speedups, orderings × architectures."""
    orderings = list(REORDERINGS)
    rows = study.geomean_table(architectures, orderings)
    return (f"{title}\n"
            + format_table([study.kernel.upper()] + orderings + ["Mean"],
                           rows))


def render_boxplot_figure(study: SpeedupStudy, architectures,
                          title: str, lower: float = 0.0,
                          upper: float = 2.5) -> str:
    """Figures 2/3: speedup boxplots per architecture and ordering."""
    blocks = [title]
    for arch in architectures:
        labels = list(REORDERINGS)
        summaries = [study.boxes[(arch, o)] for o in labels]
        blocks.append(f"-- {arch} --")
        blocks.append(format_boxplot_rows(labels, summaries, lower, upper))
    return "\n".join(blocks)


def render_fig1(showcase: dict) -> str:
    """Figure 1: named matrices × (RCM, ND, GP) × two machines."""
    headers = ["matrix", "arch", "RCM", "ND", "GP"]
    rows = []
    for (name, arch), cell in showcase.items():
        rows.append([name, arch, cell["RCM"], cell["ND"], cell["GP"]])
    return "Figure 1: SpMV speedup of selected reorderings\n" + \
        format_table(headers, rows, floatfmt="{:.2f}")


def render_classes(classes: dict) -> str:
    """Figure 4: class representatives with speedups and imbalance."""
    from ..analysis.classes import CLASS_DESCRIPTIONS

    blocks = ["Figure 4: six-class analysis"]
    for cls, data in sorted(classes.items()):
        blocks.append(f"Class {cls} ({data['matrix']}): "
                      f"{CLASS_DESCRIPTIONS[cls]}")
        headers = ["arch", "ordering", "s1d", "s2d", "imb0", "imb1", "cls"]
        rows = []
        for arch, cells in data.items():
            if arch == "matrix":
                continue
            for o, c in cells.items():
                rows.append([arch, o, c["speedup_1d"], c["speedup_2d"],
                             c["imbalance_before"], c["imbalance_after"],
                             c["class"]])
        blocks.append(format_table(headers, rows, floatfmt="{:.2f}"))
    return "\n".join(blocks)


def render_profile_figure(profiles: dict, methods,
                          taus=(1.0, 1.1, 1.5, 2.0, 5.0)) -> str:
    """Figure 5: performance profiles sampled at interesting τ values."""
    blocks = ["Figure 5: performance profiles (fraction within factor τ "
              "of best)"]
    for feature, prof in profiles.items():
        headers = [feature] + [f"τ={t}" for t in taus]
        rows = []
        for m in methods:
            rows.append([m] + [profile_at(prof, m, t) for t in taus])
        blocks.append(format_table(headers, rows, floatfmt="{:.2f}"))
    return "\n".join(blocks)


def render_fill_figure(fill: dict) -> str:
    """Figure 6: fill-ratio boxplots per ordering."""
    labels = [o for o in fill if o != "_raw"]
    summaries = [fill[o] for o in labels]
    hi = max(s[4] for s in summaries) * 1.05
    return ("Figure 6: nnz(L)/nnz(A) per ordering\n"
            + format_boxplot_rows(labels, summaries, 0.0, hi))


def render_overhead_table(rows: list) -> str:
    """Table 5: reordering time (s) + single SpMV iteration time (s)."""
    headers = ["Matrix", "RCM", "AMD", "ND", "GP", "HP", "Gray",
               "SpMV(model)"]
    fmt_rows = []
    for row in rows:
        fmt_rows.append([row[0]] + [f"{v:.3g}" for v in row[1:]])
    return ("Table 5: reordering time in seconds (our serial Python "
            "implementations)\n" + format_table(headers, fmt_rows))


def render_sweep_summary(metrics, failed=(), max_failures: int = 10) -> str:
    """Human-readable digest of a :class:`~repro.harness.engine.
    SweepMetrics` (or its ``to_dict()``), plus the first few
    :class:`~repro.harness.engine.FailedCell` rows if any."""
    m = metrics if isinstance(metrics, dict) else metrics.to_dict()
    cells, stages = m["cells"], m["stages"]
    cache = m.get("cache") or {}
    lines = [
        "sweep summary",
        f"  cells      {cells['completed']}/{cells['total']} completed "
        f"({cells['resumed']} resumed, {cells['failed']} failed, "
        f"{cells['retried']} retries)",
        f"  wall       {m['wall_seconds']:.2f}s with {m['jobs']} job(s), "
        f"worker utilization {m['workers']['utilization'] * 100:.0f}%",
        "  stages     " + ", ".join(
            f"{name} {secs:.2f}s" for name, secs in sorted(stages.items())),
    ]
    if cache:
        lines.append(
            f"  cache      {cache.get('hits', 0)} hits + "
            f"{cache.get('disk_hits', 0)} disk hits / "
            f"{cache.get('requests', 0)} requests "
            f"(hit rate {cache.get('hit_rate', 0.0) * 100:.0f}%)")
    if failed:
        lines.append(f"  failures   ({min(len(failed), max_failures)} of "
                     f"{len(failed)} shown)")
        for f in list(failed)[:max_failures]:
            lines.append(
                f"    {f.matrix}/{f.ordering}/{f.kernel}/"
                f"{f.architecture}: {f.stage} {f.error} after "
                f"{f.attempts} attempt(s): {f.message}")
    return "\n".join(lines)


def render_two_d_vs_one_d(ratios: np.ndarray, arch: str) -> str:
    q1, med, q3 = np.percentile(ratios, [25, 50, 75])
    return (f"2D vs 1D on {arch}: median {med:.2f}x, quartiles "
            f"[{q1:.2f}, {q3:.2f}], max {ratios.max():.2f}x, "
            f">1.1x for {np.mean(ratios > 1.1) * 100:.0f}% of matrices")
