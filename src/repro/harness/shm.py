"""Zero-copy shared-memory transport for CSR matrices.

The sweep engine fans tasks out over a process pool; without help,
every task pickles its matrix into the pool's IPC pipe and every
worker unpickles a private copy.  This module replaces that with one
POSIX shared-memory segment per matrix:

* the engine calls :func:`export_matrix` once, copying the three CSR
  arrays into a single segment laid out as
  ``[rowptr int64 | colidx int64 | values float64]``;
* the picklable :class:`ShmMatrixHandle` (a name plus three sizes)
  travels through the pool instead of the arrays;
* workers call :func:`attach_matrix`, which maps the segment and
  builds a read-only :class:`~repro.matrix.csr.CSRMatrix` whose arrays
  are zero-copy views over the shared buffer.

Lifecycle rules keep worker death leak-free:

* **The engine owns every segment.**  It keeps the
  :class:`~multiprocessing.shared_memory.SharedMemory` objects it
  created and unlinks them in its ``finally`` block, so even a sweep
  whose workers were all SIGKILLed leaves nothing in ``/dev/shm``.
* **Workers never unlink.**  Attachments go through
  :func:`_attach_untracked`, which keeps the segment out of the
  worker's :mod:`multiprocessing.resource_tracker` (via
  ``track=False`` on Python ≥ 3.13, by unregistering on older
  versions) — otherwise the first worker to exit would unlink a
  segment its siblings still map.
* **Workers never close either.**  A mapped segment backs live numpy
  views; the per-process attachment cache in :data:`_ATTACHED` holds
  both alive until the worker exits, when the OS drops the mappings.
  One matrix is attached at most once per worker no matter how many
  crash-retry rounds resubmit it.

On platforms or filesystems where shared memory is unavailable the
engine catches the export failure and falls back to shipping pickled
bytes (see ``SweepEngine``); nothing in this module is imported at
matrix-construction time, so the fallback path never touches it.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..matrix.csr import CSRMatrix

#: every engine-created segment name starts with this, so tests (and
#: humans) can audit ``/dev/shm`` for leaks with a simple glob
SEGMENT_PREFIX = "repro_csr_"

_ITEMSIZE = 8  # int64 indices and float64 values

_counter = itertools.count()

#: per-process attachment cache: segment name -> (SharedMemory, matrix)
_ATTACHED: dict = {}


@dataclass(frozen=True)
class ShmMatrixHandle:
    """A picklable reference to a CSR matrix living in shared memory."""

    name: str
    nrows: int
    ncols: int
    nnz: int


def _layout(nrows: int, nnz: int) -> tuple:
    """Byte offsets of (rowptr, colidx, values) and the total size."""
    off_rowptr = 0
    off_colidx = (nrows + 1) * _ITEMSIZE
    off_values = off_colidx + nnz * _ITEMSIZE
    total = off_values + nnz * _ITEMSIZE
    return off_rowptr, off_colidx, off_values, total


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker custody.

    The engine process that created the segment is responsible for
    unlinking it; an attaching worker must not let its resource
    tracker "clean up" (= unlink) the segment at exit while siblings
    still map it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        # Suppress registration instead of unregistering afterwards:
        # forked workers share the engine's tracker process, so an
        # unregister here would also cancel the engine's own (create
        # time) registration and the final unlink would log KeyErrors.
        # Workers attach sequentially, so the swap is race-free.
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def export_matrix(a: CSRMatrix) -> tuple:
    """Copy ``a`` into a fresh shared-memory segment.

    Returns ``(handle, segment)``.  The caller owns ``segment`` and
    must eventually ``close()`` + ``unlink()`` it (see
    :func:`unlink_segment`); ``handle`` is what travels to workers.
    """
    nrows, nnz = a.nrows, a.nnz
    off_r, off_c, off_v, total = _layout(nrows, nnz)
    seg = None
    for _ in range(8):  # pid reuse can collide with a stale name
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_counter)}"
        try:
            seg = shared_memory.SharedMemory(
                create=True, size=max(total, 1), name=name)
            break
        except FileExistsError:
            continue
    if seg is None:  # pragma: no cover - 8 straight collisions
        raise OSError("could not allocate a shared-memory segment name")
    np.ndarray(nrows + 1, dtype=np.int64, buffer=seg.buf,
               offset=off_r)[:] = a.rowptr
    np.ndarray(nnz, dtype=np.int64, buffer=seg.buf,
               offset=off_c)[:] = a.colidx
    np.ndarray(nnz, dtype=np.float64, buffer=seg.buf,
               offset=off_v)[:] = a.values
    handle = ShmMatrixHandle(name=seg.name, nrows=nrows, ncols=a.ncols,
                             nnz=nnz)
    return handle, seg


def attach_matrix(handle: ShmMatrixHandle) -> CSRMatrix:
    """Map the segment behind ``handle`` into a zero-copy CSRMatrix.

    Attachments are memoised per process and held for the life of the
    process (the matrix's arrays are views over the mapping — closing
    it would invalidate them).  The returned arrays are read-only.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    seg = _attach_untracked(handle.name)
    off_r, off_c, off_v, _total = _layout(handle.nrows, handle.nnz)
    rowptr = np.ndarray(handle.nrows + 1, dtype=np.int64,
                        buffer=seg.buf, offset=off_r)
    colidx = np.ndarray(handle.nnz, dtype=np.int64, buffer=seg.buf,
                        offset=off_c)
    values = np.ndarray(handle.nnz, dtype=np.float64, buffer=seg.buf,
                        offset=off_v)
    for arr in (rowptr, colidx, values):
        arr.flags.writeable = False
    a = CSRMatrix(nrows=handle.nrows, ncols=handle.ncols,
                  rowptr=rowptr, colidx=colidx, values=values)
    _ATTACHED[handle.name] = (seg, a)
    return a


def attached_count() -> int:
    """Number of segments this process currently has mapped."""
    return len(_ATTACHED)


def detach_all() -> None:
    """Drop and close every cached attachment (test hygiene only).

    Only safe when no live :class:`CSRMatrix` views over the mappings
    remain; production workers never call this — their mappings die
    with the process.
    """
    while _ATTACHED:
        _name, (seg, _a) = _ATTACHED.popitem()
        try:
            seg.close()
        except Exception:  # pragma: no cover - buffer still exported
            pass


def unlink_segment(seg: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment the caller created, tolerating the
    double-unlink that happens when cleanup runs twice."""
    try:
        seg.close()
    except Exception:  # pragma: no cover - already closed
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def leaked_segments() -> list:
    """Names of engine-created segments still present in ``/dev/shm``.

    Purely diagnostic (used by the lifecycle tests); returns an empty
    list on platforms without a ``/dev/shm``.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in os.listdir(root)
                  if n.startswith(SEGMENT_PREFIX))
