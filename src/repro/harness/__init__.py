"""Experiment harness: everything needed to regenerate the paper's
tables and figures from the synthetic corpus and the machine model.

* :mod:`.runner` — runs (matrix × ordering × architecture × kernel)
  sweeps with a persistent ordering cache (permutations are expensive;
  model evaluations are cheap).
* :mod:`.engine` — the parallel, journaled, fault-tolerant sweep
  executor behind :func:`~repro.harness.runner.run_sweep` and
  ``python -m repro sweep``.
* :mod:`.experiments` — one entry point per table/figure of the paper.
* :mod:`.report` — plain-text rendering of the results.
"""

from .runner import OrderingCache, SweepResult, run_sweep
from .engine import (
    FailedCell,
    SweepEngine,
    SweepJournal,
    SweepMetrics,
)
from .artifact import (
    export_all_artifacts,
    read_artifact_file,
    write_artifact_file,
)
from .experiments import (
    dense_reference_experiment,
    experiment_classes,
    experiment_cholesky_fill,
    experiment_feature_profiles,
    experiment_fig1_showcase,
    experiment_overhead,
    experiment_speedups,
    two_d_vs_one_d,
)
from .report import (
    render_boxplot_figure,
    render_geomean_table,
    render_overhead_table,
    render_profile_figure,
)

__all__ = [
    "OrderingCache",
    "SweepResult",
    "run_sweep",
    "FailedCell",
    "SweepEngine",
    "SweepJournal",
    "SweepMetrics",
    "export_all_artifacts",
    "read_artifact_file",
    "write_artifact_file",
    "experiment_speedups",
    "experiment_fig1_showcase",
    "experiment_classes",
    "experiment_feature_profiles",
    "experiment_cholesky_fill",
    "experiment_overhead",
    "dense_reference_experiment",
    "two_d_vs_one_d",
    "render_geomean_table",
    "render_boxplot_figure",
    "render_overhead_table",
    "render_profile_figure",
]
