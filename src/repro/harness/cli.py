"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``corpus``      list the synthetic corpus for a tier
``archs``       print the Table 2 machines
``reorder``     reorder a Matrix Market file and report feature changes
``study``       run the speedup study (Figs 2/3, Tables 3/4) on a tier
``sweep``       run the parallel, resumable measurement sweep engine
``recommend``   suggest an ordering for a Matrix Market file
``advise``      learned, ranked ordering selection (repro.advisor)
``serve``       run the always-on advisor daemon (repro.serve)
``loadgen``     replay seeded zipf/bursty traffic at a daemon
``report``      render/validate trace + journal + manifest artifacts
``check``       differential tests and invariant checks (oracle layer)
``snapshot``    build/verify a content-addressed corpus snapshot
``perf``        benchmark ledger: record/compare/trend with CI gates
``profile``     run any command under the sampling profiler

Output discipline: *data* (tables, rankings, reports) goes to stdout
via ``print`` so pipelines keep working; *status* (progress
heartbeats, "wrote X" notices, diagnostics) goes through the
``repro`` logger to stderr — one atomic record per line, so a
``--jobs N`` sweep's heartbeat can never interleave mid-line with
other output.  ``--quiet`` silences status, ``--verbose`` adds debug
detail.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..analysis import recommend_ordering
from ..features import bandwidth, offdiagonal_nonzeros, profile
from ..generators import build_corpus
from ..machine import architecture_names, get_architecture
from ..matrix import read_matrix_market, write_matrix_market
from ..obs import get_logger, setup_cli_logging
from ..obs import trace as obs_trace
from ..reorder import ALL_ORDERINGS, compute_ordering
from ..util import format_table

log = get_logger("cli")


def _cmd_corpus(args) -> int:
    corpus = build_corpus(args.tier, seed=args.seed)
    rows = [[e.name, e.group, e.nrows, e.nnz,
             "SPD" if e.spd else ""] for e in corpus]
    print(format_table(["name", "group", "rows", "nnz", ""], rows))
    print(f"{len(corpus)} matrices, {sum(e.nnz for e in corpus):,} "
          "total nonzeros")
    return 0


def _cmd_archs(_args) -> int:
    rows = []
    for name in architecture_names():
        a = get_architecture(name)
        rows.append([name, a.cpu, a.isa, a.cores,
                     a.l3_total // 2**20, a.bandwidth / 1e9])
    print(format_table(
        ["name", "cpu", "isa", "cores", "L3 [MiB]", "BW [GB/s]"],
        rows, floatfmt="{:.1f}"))
    return 0


def _cmd_reorder(args) -> int:
    a = read_matrix_market(args.input)
    ordering = compute_ordering(a, args.ordering, nparts=args.nparts)
    b = ordering.apply(a)
    print(format_table(
        ["feature", "before", "after"],
        [["bandwidth", bandwidth(a), bandwidth(b)],
         ["profile", profile(a), profile(b)],
         ["offdiag", offdiagonal_nonzeros(a, args.nparts),
          offdiagonal_nonzeros(b, args.nparts)]]))
    print(f"{args.ordering} took {ordering.seconds:.3f}s")
    if args.output:
        write_matrix_market(b, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_recommend(args) -> int:
    a = read_matrix_market(args.input)
    choice = recommend_ordering(a, nthreads=args.nparts,
                                kernel=args.kernel)
    print(f"recommended ordering for the {args.kernel.upper()} kernel: "
          f"{choice}")
    return 0


def _resolve_advise_input(spec: str, scale: float, seed):
    """A Matrix Market path, or the name of a paper stand-in matrix."""
    from ..generators.suite import named_matrix, named_matrix_names

    if os.path.exists(spec):
        a = read_matrix_market(spec)
        return a, os.path.splitext(os.path.basename(spec))[0]
    if spec in named_matrix_names():
        entry = named_matrix(spec, scale=scale, seed=seed)
        return entry.matrix, entry.name
    raise SystemExit(
        f"advise: {spec!r} is neither a file nor a named stand-in "
        f"(known stand-ins: {', '.join(named_matrix_names())})")


def _cmd_advise(args) -> int:
    from ..advisor import Advisor, AdvisorModel, train_model
    from .runner import OrderingCache

    a, name = _resolve_advise_input(args.input, args.scale, args.seed)
    arch = get_architecture(args.arch)
    orderings = args.orderings.split(",") if args.orderings else None
    workload = getattr(args, "workload", "spmv")
    if args.model and os.path.exists(args.model):
        model = AdvisorModel.load(args.model)
        print(f"loaded model from {args.model} "
              f"({model.trained_on.get('rows', '?')} training rows)")
    else:
        cache = OrderingCache(path=args.cache) if args.cache else None
        # sweep the requested workload next to the plain kernels so
        # the training set has rows at the queried feature level
        kernels: tuple = ("1d", "2d")
        if workload != "spmv":
            spec = workload if args.kernel == "1d" \
                else f"{workload}:{args.kernel}"
            kernels = kernels + (spec,)
        model = train_model(tier=args.train_tier, architectures=[arch],
                            orderings=orderings, kernels=kernels,
                            cache=cache, seed=args.seed,
                            limit=args.train_limit)
        print(f"trained on {model.trained_on['rows']} rows "
              f"({args.train_tier} tier, {arch.name})")
        if args.model:
            model.save(args.model)
            print(f"saved model to {args.model}")
    advisor = Advisor(model, iterations=args.iterations)
    advice = advisor.advise(a, arch, kernel=args.kernel, matrix_name=name,
                            top=args.top, workload=workload)
    print(f"\nranked orderings for {name} ({a.nrows}x{a.ncols}, "
          f"nnz={a.nnz}) on {arch.name}, {args.kernel.upper()} kernel, "
          f"{workload} workload:")
    rows = [[i + 1, adv.ordering, adv.predicted_speedup, adv.confidence]
            for i, adv in enumerate(advice)]
    print(format_table(["rank", "ordering", "pred. speedup", "confidence"],
                       rows, floatfmt="{:.3f}"))
    top = advice[0]
    if top.ordering == "original":
        print("keep the natural order: no candidate clears the "
              "reordering-cost break-even"
              if args.iterations is not None else
              "keep the natural order: no reordering is predicted "
              "to help")
    else:
        be = model.costs.break_even_iterations(
            top.ordering, a.nnz, top.predicted_speedup)
        print(f"{top.ordering} amortizes its reordering cost after "
              f"~{be:.0f} SpMV iterations")
    return 0


def _cmd_study(args) -> int:
    from ..machine import architecture_names as anames
    from .experiments import REORDERINGS, experiment_speedups
    from .report import render_boxplot_figure, render_geomean_table
    from .runner import OrderingCache, run_sweep

    from ..obs.profiler import maybe_profile

    corpus = build_corpus(args.tier, seed=args.seed)
    archs = [get_architecture(n)
             for n in (args.archs.split(",") if args.archs else anames())]
    # workload specs ride the sweep's kernel axis next to "1d"/"2d"
    extra = tuple(w for w in getattr(args, "workloads", "").split(",")
                  if w)
    kernels = ("1d", "2d") + extra
    with maybe_profile(args.profile):
        sweep = run_sweep(corpus, archs, list(REORDERINGS),
                          kernels=kernels,
                          cache=OrderingCache(path=args.cache),
                          jobs=args.jobs, journal_path=args.journal,
                          resume=args.resume)
    names = [a.name for a in archs]
    labeled = [("1d", "Table 3: geomean 1D speedups"),
               ("2d", "Table 4: geomean 2D speedups")]
    labeled += [(w, f"geomean {w} workload speedups") for w in extra]
    for kernel, title in labeled:
        study = experiment_speedups(sweep, names, kernel)
        print(render_geomean_table(study, names, title))
        print()
        if args.boxplots:
            print(render_boxplot_figure(
                study, names, f"speedup distribution ({kernel})"))
            print()
    return 0


def _progress_printer(min_interval=0.5):
    """A throttled ``--progress`` heartbeat for the sweep engine.

    Emits through the ``repro`` logger so each line is one atomic
    handler ``emit`` — the heartbeat can never tear mid-line even when
    workers or other threads are writing at the same time.

    The first tick always prints (so a resumed sweep immediately shows
    how much the journal already covered), and the rate/ETA count only
    cells worked *this run*: on ``--resume`` the first tick's ``done``
    is journal backfill, not throughput, and dividing it by elapsed
    time would promise an absurdly optimistic ETA.
    """
    import time

    state = {"last": None, "resumed": None}

    def cb(done, total, failed, elapsed) -> None:
        now = time.monotonic()
        first = state["last"] is None
        if first:
            state["resumed"] = done
        elif done < total and now - state["last"] < min_interval:
            return
        state["last"] = now
        worked = done - state["resumed"]
        rate = worked / elapsed if elapsed > 0 else 0.0
        if done < total and rate > 0:
            eta = f", ~{(total - done) / rate:.0f}s left"
        else:
            eta = ""
        resumed = (f" ({state['resumed']} resumed)"
                   if first and state["resumed"] else "")
        log.info("[sweep] %d/%d cells%s, %d failed, %.1fs elapsed "
                 "(%.0f cells/s%s)", done, total, resumed, failed,
                 elapsed, rate, eta)

    return cb


def _cmd_sweep(args) -> int:
    from ..util.timing import Timer
    from .engine import SweepEngine
    from .experiments import REORDERINGS, experiment_speedups
    from .report import render_geomean_table, render_sweep_summary
    from .runner import OrderingCache

    snapshot = None
    with Timer() as t_gen:
        if args.corpus:
            from ..storage import open_corpus_snapshot

            snapshot = open_corpus_snapshot(args.corpus)
            corpus = list(snapshot.entries)
            log.info("attached snapshot %s (%d matrices, signature %s)",
                     args.corpus, len(corpus), snapshot.signature)
        else:
            corpus = build_corpus(args.tier, seed=args.seed)
        if args.limit:
            corpus = corpus[:args.limit]
    archs = [get_architecture(n)
             for n in (args.archs.split(",")
                       if args.archs else architecture_names())]
    orderings = (args.orderings.split(",") if args.orderings
                 else list(REORDERINGS))
    kernels = tuple(args.kernels.split(","))
    if args.trace:
        # stream every finished span to a sidecar JSONL next to the
        # final Chrome trace so a killed run still leaves evidence
        jsonl = args.trace + "l" if args.trace.endswith(".json") \
            else args.trace + ".jsonl"
        obs_trace.enable(jsonl_path=jsonl)
    # --shm predates --transport and stays as an alias; an explicit
    # --transport wins, otherwise on/off map to shm/pickle
    transport = args.transport
    if transport == "auto" and args.shm != "auto":
        transport = {"on": "shm", "off": "pickle"}[args.shm]
    engine = SweepEngine(
        corpus, archs, orderings, kernels=kernels,
        cache=OrderingCache(path=args.cache),
        seed=args.seed, jobs=args.jobs, journal_path=args.journal,
        resume=args.resume, timeout=args.timeout, retries=args.retries,
        transport=transport, shard_bytes=args.shard_bytes,
        snapshot=snapshot,
        trace=bool(args.trace) or None,
        manifest_path=args.manifest or None,
        progress=_progress_printer() if args.progress else None)
    from ..obs.profiler import maybe_profile

    with maybe_profile(args.profile):
        sweep = engine.run()
    engine.metrics.stages["generate"] = t_gen.elapsed
    if args.trace:
        nevents = obs_trace.TRACER.save(args.trace)
        obs_trace.disable()
        obs_trace.TRACER.clear()
        log.info("wrote %s (%d events; load in https://ui.perfetto.dev)",
                 args.trace, nevents)
    if args.manifest:
        log.info("wrote %s", args.manifest)
    if args.metrics:
        engine.metrics.save(args.metrics)
        log.info("wrote %s", args.metrics)
    print(render_sweep_summary(engine.metrics, sweep.failed))
    if args.tables:
        names = [a.name for a in archs]
        if sweep.failed or set(orderings) < set(REORDERINGS):
            print("\n(geomean tables skipped: the sweep is incomplete "
                  "or ran an ordering subset)")
        else:
            for kernel, tbl in (("1d", 3), ("2d", 4)):
                if kernel not in kernels:
                    continue
                study = experiment_speedups(sweep, names, kernel)
                print()
                print(render_geomean_table(
                    study, names,
                    f"Table {tbl}: geomean {kernel.upper()} speedups"))
    return 1 if (sweep.failed and args.strict) else 0


def _cmd_report(args) -> int:
    from ..obs.report import check_artifacts, render_report

    journal = args.journal or None
    manifest = args.manifest or None
    if args.check:
        # default the sidecar to the path `sweep --trace` derives
        # (trace.json -> trace.jsonl), when that file exists
        sidecar = args.sidecar or None
        if sidecar is None and args.trace and args.trace.endswith(".json"):
            derived = args.trace + "l"
            if os.path.exists(derived):
                sidecar = derived
        problems = check_artifacts(
            args.trace, journal, manifest,
            require_spans=("reorder", "reuse_stats", "model_eval"),
            sidecar_path=sidecar)
        if problems:
            for problem in problems:
                log.error("report --check: %s", problem)
            return 1
        checked = f"ok: {args.trace} is a valid Chrome trace with the " \
                  "required sweep spans"
        if sidecar:
            checked += f" (sidecar {sidecar} consistent)"
        print(checked)
        return 0
    print(render_report(args.trace, journal, manifest, top=args.top))
    return 0


class _CommandParser(argparse.ArgumentParser):
    """An ArgumentParser whose unknown-subcommand error always lists
    every registered command (the stock "invalid choice" message is
    easy to truncate and names only the parse failure)."""

    commands: tuple = ()

    def error(self, message: str):
        if "invalid choice" in message and self.commands:
            message = (f"{message}\nregistered commands: "
                       + ", ".join(self.commands))
        super().error(message)


def build_parser() -> argparse.ArgumentParser:
    parser = _CommandParser(
        prog="repro",
        description="Reproduction of 'Bringing Order to Sparsity' "
                    "(SC '23)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only warnings and errors on stderr")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="debug-level status on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="list the synthetic corpus")
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("archs", help="print the Table 2 machines")
    p.set_defaults(func=_cmd_archs)

    p = sub.add_parser("reorder", help="reorder a Matrix Market file")
    p.add_argument("input")
    p.add_argument("ordering", choices=[o for o in ALL_ORDERINGS
                                        if o != "original"])
    p.add_argument("--output")
    p.add_argument("--nparts", type=int, default=64)
    p.set_defaults(func=_cmd_reorder)

    p = sub.add_parser("recommend",
                       help="suggest an ordering for a matrix")
    p.add_argument("input")
    p.add_argument("--kernel", default="1d", choices=("1d", "2d"))
    p.add_argument("--nparts", type=int, default=64)
    p.set_defaults(func=_cmd_recommend)

    p = sub.add_parser(
        "advise",
        help="learned ordering selection for a matrix on a machine")
    p.add_argument("input",
                   help="Matrix Market file or a named stand-in "
                        "(e.g. Freescale2)")
    p.add_argument("--arch", default="Milan B",
                   help="target Table 2 architecture")
    p.add_argument("--kernel", default="1d", choices=("1d", "2d"))
    p.add_argument("--workload", default="spmv",
                   choices=("spmv", "cg", "jacobi", "spgemm", "spmm"),
                   help="what runs per scheduled iteration (solver "
                        "loops and SpGEMM/SpMM are scored by the same "
                        "machine model)")
    p.add_argument("--model", default=None,
                   help="JSON model artifact to load (or save after "
                        "training)")
    p.add_argument("--train-tier", default="tiny",
                   choices=("tiny", "small", "medium"),
                   help="corpus tier to train on when no model exists")
    p.add_argument("--train-limit", type=int, default=None,
                   help="cap the number of training matrices")
    p.add_argument("--orderings", default="",
                   help="comma-separated candidate orderings "
                        "(default: all six)")
    p.add_argument("--iterations", type=float, default=None,
                   help="SpMV iteration budget for the cost break-even "
                        "gate (default: no gating)")
    p.add_argument("--scale", type=float, default=0.25,
                   help="scale of a named stand-in input")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=None,
                   help="only print the best N orderings")
    p.add_argument("--cache", default=None,
                   help="directory for the training ordering cache")
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser(
        "sweep",
        help="run the parallel, resumable measurement sweep engine")
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--limit", type=int, default=None,
                   help="cap the number of corpus matrices")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--archs", default="",
                   help="comma-separated arch names (default: all 8)")
    p.add_argument("--orderings", default="",
                   help="comma-separated orderings (default: the six)")
    p.add_argument("--kernels", default="1d,2d",
                   help="comma-separated kernels (default: 1d,2d)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = run inline)")
    p.add_argument("--corpus", default=None,
                   help="sweep a corpus snapshot directory (see "
                        "'repro snapshot') instead of generating "
                        "--tier in RAM")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "memmap", "pickle"),
                   help="matrix transport for --jobs>1: shared-memory "
                        "segments, read-only disk memmaps, or explicit "
                        "pickling ('auto' picks memmap for snapshot "
                        "corpora, shm otherwise)")
    p.add_argument("--shard-bytes", type=int, default=None,
                   help="bound the matrix bytes in flight per pool "
                        "round; workers are recycled between shards so "
                        "peak RSS tracks the largest shard")
    p.add_argument("--shm", default="auto", choices=("auto", "on", "off"),
                   help="deprecated alias for --transport "
                        "(on=shm, off=pickle)")
    p.add_argument("--journal", default=None,
                   help="append-only JSONL checkpoint file")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already completed in --journal")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock budget in seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for a failing ordering")
    p.add_argument("--progress", action="store_true",
                   help="print a heartbeat while the sweep runs")
    p.add_argument("--metrics", default="sweep_metrics.json",
                   help="machine-readable metrics artifact "
                        "(empty string disables)")
    p.add_argument("--trace", default=None,
                   help="write a Chrome trace-event JSON file (plus a "
                        "crash-safe .jsonl sidecar) of every span")
    p.add_argument("--manifest", default="run_manifest.json",
                   help="run-manifest artifact (git SHA, seed, corpus "
                        "signature, package versions; empty string "
                        "disables)")
    p.add_argument("--tables", action="store_true",
                   help="print the Table 3/4 geomeans afterwards")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero if any cell failed")
    p.add_argument("--cache", default=None,
                   help="directory for the ordering cache")
    p.add_argument("--profile", default=None, metavar="PATH",
                   help="sample the run and write collapsed flamegraph "
                        "stacks to PATH (profiles the main process; "
                        "use --jobs 1 to see task internals)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("study", help="run the speedup study")
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--archs", default="",
                   help="comma-separated arch names (default: all 8)")
    p.add_argument("--cache", default=None,
                   help="directory for the ordering cache")
    p.add_argument("--jobs", type=int, default=1,
                   help="sweep worker processes (1 = run inline)")
    p.add_argument("--journal", default=None,
                   help="JSONL checkpoint file for the sweep")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already completed in --journal")
    p.add_argument("--boxplots", action="store_true")
    p.add_argument("--workloads", default="",
                   help="comma-separated extra workload specs to sweep "
                        "next to the plain kernels (e.g. cg,spgemm or "
                        "jacobi:2d); each gets its own geomean table")
    p.add_argument("--profile", default=None, metavar="PATH",
                   help="sample the sweep and write collapsed "
                        "flamegraph stacks to PATH")
    p.set_defaults(func=_cmd_study)

    p = sub.add_parser(
        "report",
        help="render (or --check) sweep trace/journal/manifest "
             "artifacts")
    p.add_argument("--trace", default="trace.json",
                   help="Chrome trace-event file written by "
                        "'sweep --trace'")
    p.add_argument("--journal", default="",
                   help="sweep journal JSONL (optional)")
    p.add_argument("--manifest", default="run_manifest.json",
                   help="run manifest JSON (empty string skips it)")
    p.add_argument("--top", type=int, default=10,
                   help="number of slowest spans to list")
    p.add_argument("--sidecar", default="",
                   help="trace JSONL sidecar to validate with --check "
                        "(default: <trace>l when it exists)")
    p.add_argument("--check", action="store_true",
                   help="validate the artifacts instead of rendering; "
                        "exit nonzero on any schema problem")
    p.set_defaults(func=_cmd_report)

    from ..check.cli import add_check_parser
    add_check_parser(sub)

    from ..storage.cli import add_snapshot_parser
    add_snapshot_parser(sub)

    from ..serve.cli import add_serve_parsers
    add_serve_parsers(sub)

    from ..obs.perf import add_perf_parser
    add_perf_parser(sub)

    from ..obs.profiler import add_profile_parser
    add_profile_parser(sub)

    parser.commands = tuple(sorted(sub.choices))
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    setup_cli_logging(quiet=args.quiet, verbose=args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
