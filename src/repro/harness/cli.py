"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``corpus``      list the synthetic corpus for a tier
``archs``       print the Table 2 machines
``reorder``     reorder a Matrix Market file and report feature changes
``study``       run the speedup study (Figs 2/3, Tables 3/4) on a tier
``recommend``   suggest an ordering for a Matrix Market file
"""

from __future__ import annotations

import argparse
import sys

from ..analysis import recommend_ordering
from ..features import bandwidth, offdiagonal_nonzeros, profile
from ..generators import build_corpus
from ..machine import architecture_names, get_architecture
from ..matrix import read_matrix_market, write_matrix_market
from ..reorder import ALL_ORDERINGS, compute_ordering
from ..util import format_table


def _cmd_corpus(args) -> int:
    corpus = build_corpus(args.tier, seed=args.seed)
    rows = [[e.name, e.group, e.nrows, e.nnz,
             "SPD" if e.spd else ""] for e in corpus]
    print(format_table(["name", "group", "rows", "nnz", ""], rows))
    print(f"{len(corpus)} matrices, {sum(e.nnz for e in corpus):,} "
          "total nonzeros")
    return 0


def _cmd_archs(_args) -> int:
    rows = []
    for name in architecture_names():
        a = get_architecture(name)
        rows.append([name, a.cpu, a.isa, a.cores,
                     a.l3_total // 2**20, a.bandwidth / 1e9])
    print(format_table(
        ["name", "cpu", "isa", "cores", "L3 [MiB]", "BW [GB/s]"],
        rows, floatfmt="{:.1f}"))
    return 0


def _cmd_reorder(args) -> int:
    a = read_matrix_market(args.input)
    ordering = compute_ordering(a, args.ordering, nparts=args.nparts)
    b = ordering.apply(a)
    print(format_table(
        ["feature", "before", "after"],
        [["bandwidth", bandwidth(a), bandwidth(b)],
         ["profile", profile(a), profile(b)],
         ["offdiag", offdiagonal_nonzeros(a, args.nparts),
          offdiagonal_nonzeros(b, args.nparts)]]))
    print(f"{args.ordering} took {ordering.seconds:.3f}s")
    if args.output:
        write_matrix_market(b, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_recommend(args) -> int:
    a = read_matrix_market(args.input)
    choice = recommend_ordering(a, nthreads=args.nparts,
                                kernel=args.kernel)
    print(f"recommended ordering for the {args.kernel.upper()} kernel: "
          f"{choice}")
    return 0


def _cmd_study(args) -> int:
    from ..machine import architecture_names as anames
    from .experiments import REORDERINGS, experiment_speedups
    from .report import render_boxplot_figure, render_geomean_table
    from .runner import OrderingCache, run_sweep

    corpus = build_corpus(args.tier, seed=args.seed)
    archs = [get_architecture(n)
             for n in (args.archs.split(",") if args.archs else anames())]
    sweep = run_sweep(corpus, archs, list(REORDERINGS),
                      cache=OrderingCache(path=args.cache))
    names = [a.name for a in archs]
    for kernel, tbl in (("1d", 3), ("2d", 4)):
        study = experiment_speedups(sweep, names, kernel)
        print(render_geomean_table(
            study, names, f"Table {tbl}: geomean {kernel.upper()} "
            "speedups"))
        print()
        if args.boxplots:
            print(render_boxplot_figure(
                study, names, f"speedup distribution ({kernel})"))
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Bringing Order to Sparsity' "
                    "(SC '23)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="list the synthetic corpus")
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("archs", help="print the Table 2 machines")
    p.set_defaults(func=_cmd_archs)

    p = sub.add_parser("reorder", help="reorder a Matrix Market file")
    p.add_argument("input")
    p.add_argument("ordering", choices=[o for o in ALL_ORDERINGS
                                        if o != "original"])
    p.add_argument("--output")
    p.add_argument("--nparts", type=int, default=64)
    p.set_defaults(func=_cmd_reorder)

    p = sub.add_parser("recommend",
                       help="suggest an ordering for a matrix")
    p.add_argument("input")
    p.add_argument("--kernel", default="1d", choices=("1d", "2d"))
    p.add_argument("--nparts", type=int, default=64)
    p.set_defaults(func=_cmd_recommend)

    p = sub.add_parser("study", help="run the speedup study")
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--archs", default="",
                   help="comma-separated arch names (default: all 8)")
    p.add_argument("--cache", default=None,
                   help="directory for the ordering cache")
    p.add_argument("--boxplots", action="store_true")
    p.set_defaults(func=_cmd_study)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
