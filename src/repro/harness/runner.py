"""Sweep runner with a persistent ordering cache.

Computing an ordering is orders of magnitude more expensive than
evaluating the performance model, and the same (matrix, ordering,
part-count) triple recurs across the eight architectures and the two
kernels.  :class:`OrderingCache` memoises permutations in memory and
optionally on disk (``.npz`` per corpus), so a full 8-architecture
sweep costs one ordering pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..generators.suite import CorpusEntry
from ..machine.arch import Architecture
from ..machine.bench import MeasurementRecord, simulate_measurement
from ..machine.model import PerfModel
from ..matrix.csr import CSRMatrix
from ..reorder import compute_ordering
from ..reorder.perm import OrderingResult


class OrderingCache:
    """Memoises (matrix-name, ordering, nparts) → OrderingResult.

    ``path`` enables disk persistence: each cached permutation is stored
    in one ``.npz`` with its timing metadata.  Matrices are keyed by
    name — callers are responsible for name uniqueness within a corpus
    (which :func:`repro.generators.build_corpus` guarantees).

    ``stats`` exposes hit/miss counters so downstream consumers (the
    advisor's serving cache, the benchmark harness) can observe how
    much reordering work was actually reused.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._memory: dict = {}
        self._hits = 0
        self._disk_hits = 0
        self._misses = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    @property
    def stats(self) -> dict:
        """Counters: in-memory hits, disk hits, and (computed) misses."""
        total = self._hits + self._disk_hits + self._misses
        return {
            "hits": self._hits,
            "disk_hits": self._disk_hits,
            "misses": self._misses,
            "requests": total,
            "hit_rate": ((self._hits + self._disk_hits) / total
                         if total else 0.0),
        }

    @staticmethod
    def _key(a: CSRMatrix, matrix_name: str, ordering: str,
             nparts: int) -> str:
        # Only GP depends on nparts; normalise all other orderings so
        # they share cache entries.  Shape and nnz are part of the key
        # so regenerating a named matrix at a different scale can never
        # hit a stale permutation.
        if ordering != "GP":
            nparts = 0
        return (f"{matrix_name}__{a.nrows}x{a.ncols}_{a.nnz}"
                f"__{ordering}__{nparts}")

    def get(self, a: CSRMatrix, matrix_name: str, ordering: str,
            nparts: int = 64, seed=0) -> OrderingResult:
        """Return the cached ordering, computing it on a miss."""
        key = self._key(a, matrix_name, ordering, nparts)
        if key in self._memory:
            self._hits += 1
            return self._memory[key]
        if self.path is not None:
            f = os.path.join(self.path, key + ".npz")
            if os.path.exists(f):
                result = self._load(f)
                if result is not None:
                    self._memory[key] = result
                    self._disk_hits += 1
                    return result
        self._misses += 1
        result = compute_ordering(a, ordering, nparts=nparts, seed=seed)
        return self._store(key, result)

    @staticmethod
    def _load(f: str):
        """Read one disk entry; a corrupt/truncated file is a miss (it
        will be recomputed and overwritten), not a crash."""
        try:
            data = np.load(f)
            return OrderingResult(
                algorithm=str(data["algorithm"]),
                perm=data["perm"],
                symmetric=bool(data["symmetric"]),
                seconds=float(data["seconds"]))
        except Exception:
            return None

    def _store(self, key: str, result: OrderingResult) -> OrderingResult:
        self._memory[key] = result
        if self.path is not None:
            np.savez(os.path.join(self.path, key + ".npz"),
                     algorithm=result.algorithm, perm=result.perm,
                     symmetric=result.symmetric, seconds=result.seconds)
        return result


@dataclass
class SweepResult:
    """All measurement records of a sweep, with lookup helpers."""

    records: list = field(default_factory=list)

    def add(self, rec: MeasurementRecord) -> None:
        self.records.append(rec)

    def lookup(self, matrix: str, ordering: str, kernel: str,
               architecture: str) -> MeasurementRecord:
        for r in self.records:
            if (r.matrix == matrix and r.ordering == ordering
                    and r.kernel == kernel
                    and r.architecture == architecture):
                return r
        raise KeyError((matrix, ordering, kernel, architecture))

    def speedups(self, ordering: str, kernel: str,
                 architecture: str) -> np.ndarray:
        """Speedup over 'original' for every matrix, in corpus order."""
        base = {}
        reordered = {}
        for r in self.records:
            if r.kernel != kernel or r.architecture != architecture:
                continue
            if r.ordering == "original":
                base[r.matrix] = r.gflops_max
            elif r.ordering == ordering:
                reordered[r.matrix] = r.gflops_max
        names = [m for m in base if m in reordered]
        return np.array([reordered[m] / base[m] for m in names])

    def matrices(self) -> list:
        seen = []
        for r in self.records:
            if r.matrix not in seen:
                seen.append(r.matrix)
        return seen


def run_sweep(corpus: list, architectures: list, orderings: list,
              kernels: tuple = ("1d", "2d"), cache: OrderingCache | None = None,
              model_factory=None, seed=0) -> SweepResult:
    """Run the full measurement sweep.

    Parameters
    ----------
    corpus:
        List of :class:`CorpusEntry`.
    architectures:
        List of :class:`Architecture` to model.
    orderings:
        Ordering names including or excluding ``"original"`` (the
        baseline is always measured).
    model_factory:
        Optional ``arch -> PerfModel`` hook (ablations override this).
    """
    cache = cache or OrderingCache()
    if model_factory is None:
        model_factory = PerfModel
    result = SweepResult()
    orderings = [o for o in orderings if o != "original"]
    for arch in architectures:
        model = model_factory(arch)
        for entry in corpus:
            a = entry.matrix
            for kernel in kernels:
                result.add(simulate_measurement(
                    a, arch, kernel, entry.name, "original", model=model))
            for name in orderings:
                r = cache.get(a, entry.name, name, nparts=arch.gp_parts,
                              seed=seed)
                b = r.apply(a)
                for kernel in kernels:
                    result.add(simulate_measurement(
                        b, arch, kernel, entry.name, name, model=model))
    return result
