"""Sweep runner with a persistent ordering cache.

Computing an ordering is orders of magnitude more expensive than
evaluating the performance model, and the same (matrix, ordering,
part-count) triple recurs across the eight architectures and the two
kernels.  :class:`OrderingCache` memoises permutations in memory and
optionally on disk (``.npz`` per corpus), so a full 8-architecture
sweep costs one ordering pass.

Execution itself lives in :mod:`repro.harness.engine`:
:func:`run_sweep` is a backwards-compatible wrapper over
:class:`~repro.harness.engine.SweepEngine`, which adds process-pool
fan-out, JSONL checkpointing with resume, per-cell timeouts with
bounded retries, and a metrics artifact.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import HarnessError
from ..machine.bench import MeasurementRecord
from ..matrix.csr import CSRMatrix
from ..obs import cachestats
from ..reorder import compute_ordering
from ..reorder.perm import OrderingResult


class OrderingCache:
    """Memoises (matrix, ordering, nparts, seed) → OrderingResult.

    ``path`` enables disk persistence: each cached permutation is stored
    in one ``.npz`` with its timing metadata.  Keys fold in the matrix
    name, its shape and nnz, a CRC of the sparsity structure, and the
    seed, so two corpora that reuse a name — or regenerate it with a
    different seed or structure — can never alias to a stale
    permutation.

    ``stats`` exposes hit/miss counters in the shared cache-stats
    schema (:data:`repro.obs.CACHE_STATS_KEYS` —
    ``hits/misses/evictions/hit_rate/size_bytes``) plus the cache's
    own extras (``disk_hits``, ``requests``), so downstream consumers
    (the advisor's serving cache, the benchmark harness, the sweep
    engine) observe every cache the same way.  ``hits`` counts
    in-memory hits; ``hit_rate`` counts both storage levels.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._memory: dict = {}
        self._hits = 0
        self._disk_hits = 0
        self._misses = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    @property
    def stats(self) -> dict:
        """Shared-schema counters plus ``disk_hits``/``requests``.

        ``hit_rate`` covers both storage levels, so the shared helper
        derives it from the combined hit count; ``hits`` itself stays
        memory-only (the distinction the sweep report prints).  The
        zero-access guard lives in
        :func:`repro.obs.cachestats.cache_stats`, once, for every cache.

        A permutation backed by an ``np.memmap`` (a view over a stored
        snapshot) is disk-backed page cache, not private heap, so its
        bytes land in ``mapped_bytes`` rather than ``size_bytes`` —
        counting it as resident would double-bill memory the OS can
        reclaim at will.
        """
        total = self._hits + self._disk_hits + self._misses
        resident = 0
        mapped = 0
        for r in self._memory.values():
            m = cachestats.mapped_nbytes(r.perm)
            mapped += m
            if not m:
                resident += r.perm.nbytes
        stats = cachestats.cache_stats(
            hits=self._hits + self._disk_hits, misses=self._misses,
            evictions=0,             # unbounded: nothing is ever dropped
            size_bytes=resident, mapped_bytes=mapped,
            disk_hits=self._disk_hits, requests=total)
        stats["hits"] = self._hits
        return stats

    @staticmethod
    def _fingerprint(a: CSRMatrix) -> int:
        """A cheap CRC of the sparsity structure (not the values —
        orderings are structural).  Guards against two same-shaped,
        same-nnz matrices sharing a name across corpora."""
        crc = zlib.crc32(np.ascontiguousarray(
            a.rowptr, dtype=np.int64).tobytes())
        return zlib.crc32(np.ascontiguousarray(
            a.colidx, dtype=np.int64).tobytes(), crc)

    @classmethod
    def _key(cls, a: CSRMatrix, matrix_name: str, ordering: str,
             nparts: int, seed=0) -> str:
        # Only GP depends on nparts; normalise all other orderings so
        # they share cache entries.  Shape, nnz, the structure CRC and
        # the seed are part of the key so regenerating a named matrix
        # at a different scale, with different structure, or under a
        # different seed can never hit a stale permutation.
        if ordering != "GP":
            nparts = 0
        seed_tag = seed if isinstance(seed, int) else "rng"
        return (f"{matrix_name}__{a.nrows}x{a.ncols}_{a.nnz}"
                f"_{cls._fingerprint(a):08x}__{ordering}__{nparts}"
                f"__s{seed_tag}")

    def get(self, a: CSRMatrix, matrix_name: str, ordering: str,
            nparts: int = 64, seed=0) -> OrderingResult:
        """Return the cached ordering, computing it on a miss."""
        key = self._key(a, matrix_name, ordering, nparts, seed)
        if key in self._memory:
            self._hits += 1
            return self._memory[key]
        if self.path is not None:
            f = os.path.join(self.path, key + ".npz")
            if os.path.exists(f):
                result = self._load(f)
                if result is not None:
                    self._memory[key] = result
                    self._disk_hits += 1
                    return result
        self._misses += 1
        result = compute_ordering(a, ordering, nparts=nparts, seed=seed)
        return self._store(key, result)

    @staticmethod
    def _load(f: str):
        """Read one disk entry; a corrupt/truncated file is a miss (it
        will be recomputed and overwritten), not a crash."""
        try:
            data = np.load(f)
            return OrderingResult(
                algorithm=str(data["algorithm"]),
                perm=data["perm"],
                symmetric=bool(data["symmetric"]),
                seconds=float(data["seconds"]))
        except Exception:
            return None

    def _store(self, key: str, result: OrderingResult) -> OrderingResult:
        self._memory[key] = result
        if self.path is not None:
            np.savez(os.path.join(self.path, key + ".npz"),
                     algorithm=result.algorithm, perm=result.perm,
                     symmetric=result.symmetric, seconds=result.seconds)
        return result


@dataclass
class SweepResult:
    """All measurement records of a sweep, with lookup helpers.

    ``failed`` holds the structured :class:`~repro.harness.engine.
    FailedCell` rows of cells the engine could not complete; consumers
    that replay sweeps (the advisor dataset builder, the artifact
    writer) must treat a missing record as "that cell failed", not as
    a bug.
    """

    records: list = field(default_factory=list)
    failed: list = field(default_factory=list)

    def add(self, rec: MeasurementRecord) -> None:
        self.records.append(rec)

    @property
    def complete(self) -> bool:
        return not self.failed

    def lookup(self, matrix: str, ordering: str, kernel: str,
               architecture: str) -> MeasurementRecord:
        for r in self.records:
            if (r.matrix == matrix and r.ordering == ordering
                    and r.kernel == kernel
                    and r.architecture == architecture):
                return r
        raise KeyError((matrix, ordering, kernel, architecture))

    def speedups(self, ordering: str, kernel: str,
                 architecture: str) -> np.ndarray:
        """Speedup over 'original' for every matrix, in corpus order."""
        base = {}
        reordered = {}
        for r in self.records:
            if r.kernel != kernel or r.architecture != architecture:
                continue
            if r.ordering == "original":
                base[r.matrix] = r.gflops_max
            elif r.ordering == ordering:
                reordered[r.matrix] = r.gflops_max
        names = [m for m in base if m in reordered]
        return np.array([reordered[m] / base[m] for m in names])

    def matrices(self) -> list:
        seen = []
        for r in self.records:
            if r.matrix not in seen:
                seen.append(r.matrix)
        return seen


def run_sweep(corpus: list, architectures: list, orderings: list,
              kernels: tuple = ("1d", "2d"), cache: OrderingCache | None = None,
              model_factory=None, seed=0, jobs: int = 1,
              journal_path: str | None = None, resume: bool = False,
              timeout: float | None = None, retries: int = 0,
              strict: bool = True, progress=None) -> SweepResult:
    """Run the full measurement sweep through the sweep engine.

    Parameters
    ----------
    corpus:
        List of :class:`CorpusEntry`.
    architectures:
        List of :class:`Architecture` to model.
    orderings:
        Ordering names including or excluding ``"original"`` (the
        baseline is always measured).
    model_factory:
        Optional ``arch -> PerfModel`` hook (ablations override this).
        Must be picklable when ``jobs > 1``.
    jobs, journal_path, resume, timeout, retries, progress:
        Fan-out / checkpoint / fault-tolerance knobs, forwarded to
        :class:`repro.harness.engine.SweepEngine`.
    strict:
        When True (the default, matching the historical serial runner)
        any :class:`FailedCell` is escalated to a
        :class:`~repro.errors.HarnessError` after the sweep finishes.
        Pass ``strict=False`` to get the fault-tolerant behaviour: the
        failures stay on ``SweepResult.failed`` and the records of
        every other cell are returned.
    """
    from .engine import SweepEngine

    engine = SweepEngine(
        corpus, architectures, orderings, kernels=kernels, cache=cache,
        model_factory=model_factory, seed=seed, jobs=jobs,
        journal_path=journal_path, resume=resume, timeout=timeout,
        retries=retries, progress=progress)
    result = engine.run()
    if strict and result.failed:
        first = result.failed[0]
        raise HarnessError(
            f"{len(result.failed)} sweep cell(s) failed; first: "
            f"{first.matrix}/{first.ordering}/{first.kernel}/"
            f"{first.architecture} at {first.stage}: {first.error}: "
            f"{first.message} (pass strict=False to tolerate failures)")
    return result
