"""Reader/writer for the paper's artifact data format.

The paper's Zenodo dataset (10.5281/zenodo.7821491) ships one
plain-text file per (kernel, machine), each with one row per matrix and
54 columns:

* columns 1–4: matrix ``group/name``, rows, columns, nonzeros;
* column 5: thread count used on that machine;
* columns 6–54: seven orderings (original, RCM, ND, AMD, GP, HP, Gray)
  × seven measurements each:

  1. min nonzeros processed by any thread
  2. max nonzeros processed by any thread
  3. mean nonzeros per thread
  4. imbalance factor (max/mean)
  5. seconds per iteration (min of 100)
  6. max Gflop/s (2·nnz / min time)
  7. mean Gflop/s (2·nnz / mean time of the last 97 iterations)

This module writes exactly that layout from a
:class:`~repro.harness.runner.SweepResult` and reads it back, so the
reproduction's data can be post-processed by the same gnuplot/spreadsheet
workflows the original artifact targets.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import HarnessError
from .runner import SweepResult

#: ordering column order used by the artifact files
ARTIFACT_ORDERINGS = ("original", "RCM", "ND", "AMD", "GP", "HP", "Gray")
COLUMNS_PER_ORDERING = 7
HEADER_COLUMNS = 5


def artifact_filename(kernel: str, arch_name: str, nthreads: int,
                      nmatrices: int) -> str:
    """The artifact's naming convention, e.g.
    ``csr_1d_milanb_128_threads_ss40.txt``."""
    slug = arch_name.lower().replace(" ", "")
    return f"csr_{kernel}_{slug}_{nthreads:03d}_threads_ss{nmatrices}.txt"


def write_artifact_file(sweep: SweepResult, corpus, kernel: str,
                        arch_name: str, target) -> None:
    """Write one artifact-format file for (kernel, machine).

    ``corpus`` provides the matrix metadata (group, dimensions) in row
    order; every corpus entry must have records for all seven orderings
    in the sweep.
    """
    if isinstance(target, (str, Path)):
        with open(target, "wt") as f:
            _write(sweep, corpus, kernel, arch_name, f)
    else:
        _write(sweep, corpus, kernel, arch_name, target)


def _write(sweep: SweepResult, corpus, kernel: str, arch_name: str,
           f) -> None:
    for entry in corpus:
        cells = [f"{entry.group.replace(' ', '_')}/{entry.name}",
                 str(entry.nrows), str(entry.matrix.ncols),
                 str(entry.nnz)]
        nthreads = None
        for ordering in ARTIFACT_ORDERINGS:
            try:
                rec = sweep.lookup(entry.name, ordering, kernel, arch_name)
            except KeyError as exc:
                raise HarnessError(
                    f"sweep lacks a record for {entry.name}/{ordering}/"
                    f"{kernel}/{arch_name}") from exc
            if nthreads is None:
                nthreads = rec.nthreads
                cells.append(str(nthreads))
            cells.extend([
                str(rec.nnz_min), str(rec.nnz_max),
                f"{rec.nnz_mean:.6g}", f"{rec.imbalance:.6g}",
                f"{rec.seconds:.9g}", f"{rec.gflops_max:.6g}",
                f"{rec.gflops_mean:.6g}",
            ])
        f.write(" ".join(cells) + "\n")


def read_artifact_file(source) -> list:
    """Parse an artifact-format file into a list of row dicts.

    Each row dict has keys ``group, name, nrows, ncols, nnz, nthreads``
    and, per ordering, a dict with the seven measurement fields.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        with open(source, "rt") as f:
            return _read(f)
    if isinstance(source, str):
        return _read(io.StringIO(source))
    return _read(source)


def _read(f) -> list:
    rows = []
    expected = HEADER_COLUMNS + COLUMNS_PER_ORDERING * len(
        ARTIFACT_ORDERINGS)
    for lineno, line in enumerate(f, start=1):
        parts = line.split()
        if not parts:
            continue
        if len(parts) != expected:
            raise HarnessError(
                f"line {lineno}: expected {expected} columns, got "
                f"{len(parts)}")
        group, _, name = parts[0].partition("/")
        row = {
            "group": group,
            "name": name,
            "nrows": int(parts[1]),
            "ncols": int(parts[2]),
            "nnz": int(parts[3]),
            "nthreads": int(parts[4]),
        }
        for k, ordering in enumerate(ARTIFACT_ORDERINGS):
            base = HEADER_COLUMNS + k * COLUMNS_PER_ORDERING
            row[ordering] = {
                "nnz_min": int(parts[base]),
                "nnz_max": int(parts[base + 1]),
                "nnz_mean": float(parts[base + 2]),
                "imbalance": float(parts[base + 3]),
                "seconds": float(parts[base + 4]),
                "gflops_max": float(parts[base + 5]),
                "gflops_mean": float(parts[base + 6]),
            }
        rows.append(row)
    return rows


def export_all_artifacts(sweep: SweepResult, corpus, architectures,
                         out_dir) -> list:
    """Write the full artifact set (both kernels × all machines).

    Returns the written file paths; mirrors the original dataset's
    layout of one file per (kernel, machine).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for arch in architectures:
        for kernel in ("1d", "2d"):
            path = out_dir / artifact_filename(
                kernel, arch.name, arch.threads, len(corpus))
            write_artifact_file(sweep, corpus, kernel, arch.name, path)
            written.append(str(path))
    return written


def speedups_from_artifact(rows: list, ordering: str) -> np.ndarray:
    """Recompute reordering speedups from a parsed artifact file —
    the audit path the paper's appendix describes (max Gflop/s of the
    ordering divided by max Gflop/s of the original)."""
    if ordering not in ARTIFACT_ORDERINGS:
        raise HarnessError(f"unknown ordering {ordering!r}")
    return np.array([
        r[ordering]["gflops_max"] / r["original"]["gflops_max"]
        for r in rows
    ])
