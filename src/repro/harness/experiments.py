"""One entry point per table/figure of the paper's evaluation section.

Each function takes pre-built inputs (corpus, sweep results, caches) so
benchmarks can share work, and returns plain data structures that
:mod:`repro.harness.report` renders as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.classes import ClassificationInput, classify_matrix
from ..analysis.perfprofile import performance_profile
from ..analysis.stats import boxplot_summary, geomean
from ..cholesky.fill import fill_ratio
from ..errors import HarnessError
from ..features import bandwidth, offdiagonal_nonzeros, profile
from ..generators.suite import named_matrix
from ..machine.arch import Architecture, get_architecture
from ..machine.bench import simulate_measurement
from ..machine.model import PerfModel
from ..matrix.dense import tall_skinny_dense_csr
from ..reorder import ALL_ORDERINGS
from ..spmv.schedule import schedule_1d
from ..util.timing import Timer
from .runner import OrderingCache, SweepResult

REORDERINGS = tuple(o for o in ALL_ORDERINGS if o != "original")


# ----------------------------------------------------------------------
# Figures 2 & 3 + Tables 3 & 4: speedup distributions and geomeans
# ----------------------------------------------------------------------
@dataclass
class SpeedupStudy:
    """Speedup distributions for one kernel across archs and orderings."""

    kernel: str
    boxes: dict = field(default_factory=dict)     # (arch, ord) -> 5-tuple
    geomeans: dict = field(default_factory=dict)  # (arch, ord) -> float
    raw: dict = field(default_factory=dict)       # (arch, ord) -> ndarray

    def geomean_table(self, architectures, orderings) -> list:
        """Rows of Table 3/4 incl. per-row and per-column means."""
        rows = []
        for arch in architectures:
            vals = [self.geomeans[(arch, o)] for o in orderings]
            rows.append([arch] + vals + [float(np.exp(
                np.mean(np.log(vals))))])
        col_means = []
        for j, o in enumerate(orderings):
            col = [self.geomeans[(a, o)] for a in architectures]
            col_means.append(float(np.exp(np.mean(np.log(col)))))
        total = float(np.exp(np.mean(np.log(col_means))))
        rows.append(["Mean"] + col_means + [total])
        return rows


def experiment_speedups(sweep: SweepResult, architectures,
                        kernel: str,
                        allow_partial: bool = False) -> SpeedupStudy:
    """Figures 2/3 + Tables 3/4 from a completed sweep.

    ``allow_partial=True`` tolerates a fault-tolerant engine run whose
    failed cells left some (arch, ordering) combinations without
    records: those combinations are skipped instead of raising, and
    per-matrix gaps shrink the distribution they belong to.
    """
    study = SpeedupStudy(kernel=kernel)
    for arch in architectures:
        for o in REORDERINGS:
            sp = sweep.speedups(o, kernel, arch)
            if sp.size == 0:
                if allow_partial:
                    continue
                raise HarnessError(
                    f"sweep holds no records for {o}/{kernel}/{arch}")
            study.raw[(arch, o)] = sp
            study.boxes[(arch, o)] = boxplot_summary(sp)
            study.geomeans[(arch, o)] = geomean(sp)
    return study


# ----------------------------------------------------------------------
# Figure 1: named-matrix showcase (RCM/ND/GP on Milan B & Ice Lake)
# ----------------------------------------------------------------------
FIG1_MATRICES = ("Freescale2", "com-Amazon", "kmer_V1r")
FIG1_ORDERINGS = ("RCM", "ND", "GP")
FIG1_ARCHS = ("Milan B", "Ice Lake")


def experiment_fig1_showcase(cache: OrderingCache | None = None,
                             scale: float = 1.0, seed=0) -> dict:
    """Speedups of RCM/ND/GP for the three Figure 1 stand-ins.

    Returns {(matrix, arch): {ordering: speedup}} using the 1D kernel
    and max-performance semantics, exactly as the figure's caption
    describes.
    """
    cache = cache or OrderingCache()
    out = {}
    for name in FIG1_MATRICES:
        entry = named_matrix(name, scale=scale, seed=seed)
        for arch_name in FIG1_ARCHS:
            arch = get_architecture(arch_name)
            model = PerfModel(arch)
            base = simulate_measurement(entry.matrix, arch, "1d",
                                        name, "original", model=model)
            cell = {}
            for o in FIG1_ORDERINGS:
                r = cache.get(entry.matrix, name, o,
                              nparts=arch.gp_parts, seed=seed)
                b = r.apply(entry.matrix)
                rec = simulate_measurement(b, arch, "1d", name, o,
                                           model=model)
                cell[o] = rec.gflops_max / base.gflops_max
            out[(name, arch_name)] = cell
    return out


# ----------------------------------------------------------------------
# Figure 4: six-class analysis
# ----------------------------------------------------------------------
CLASS_REPRESENTATIVES = {
    1: "333SP",
    2: "nv2",
    3: "audikw_1",
    4: "HV15R",
    5: "kron_g500-logn21",
    6: "mycielskian19",
}
FIG4_ARCHS = ("Milan B", "Ice Lake", "Hi1620")  # one per vendor


def experiment_classes(cache: OrderingCache | None = None,
                       scale: float = 1.0, seed=0) -> dict:
    """Per-class representative analysis (Figure 4).

    Returns {class_id: {"matrix": name, arch: {ordering: dict}}} where
    the inner dict holds 1D/2D speedups and imbalance before/after plus
    the assigned class.
    """
    cache = cache or OrderingCache()
    out = {}
    for cls, name in CLASS_REPRESENTATIVES.items():
        entry = named_matrix(name, scale=scale, seed=seed)
        a = entry.matrix
        per_arch = {"matrix": name}
        for arch_name in FIG4_ARCHS:
            arch = get_architecture(arch_name)
            model = PerfModel(arch)
            b1 = simulate_measurement(a, arch, "1d", name, "original",
                                      model=model)
            b2 = simulate_measurement(a, arch, "2d", name, "original",
                                      model=model)
            cells = {}
            for o in REORDERINGS:
                r = cache.get(a, name, o, nparts=arch.gp_parts, seed=seed)
                m = r.apply(a)
                m1 = simulate_measurement(m, arch, "1d", name, o,
                                          model=model)
                m2 = simulate_measurement(m, arch, "2d", name, o,
                                          model=model)
                obs = ClassificationInput(
                    speedup_1d=m1.gflops_max / b1.gflops_max,
                    speedup_2d=m2.gflops_max / b2.gflops_max,
                    imbalance_before=b1.imbalance,
                    imbalance_after=m1.imbalance)
                cells[o] = {
                    "speedup_1d": obs.speedup_1d,
                    "speedup_2d": obs.speedup_2d,
                    "imbalance_before": obs.imbalance_before,
                    "imbalance_after": obs.imbalance_after,
                    "class": classify_matrix(obs),
                }
            per_arch[arch_name] = cells
        out[cls] = per_arch
    return out


# ----------------------------------------------------------------------
# Figure 5: performance profiles for features + SpMV runtime
# ----------------------------------------------------------------------
def experiment_feature_profiles(corpus, cache: OrderingCache,
                                arch: Architecture | None = None,
                                seed=0, workloads: tuple = ()) -> dict:
    """Dolan–Moré profiles of bandwidth, profile, off-diagonal nonzero
    count and SpMV runtime (Milan B by default), per ordering incl.
    original.  Returns {feature_name: profiles-dict}.

    ``workloads`` adds one ``"<workload>_time"`` profile per named
    workload (:data:`repro.spmv.registry.WORKLOADS`), scoring the same
    reordered matrices through
    :func:`repro.machine.workloads.predict_workload` — so solver loops
    and SpGEMM/SpMM get the same best-ordering comparison the plain
    SpMV time gets.  SpGEMM only scores square matrices; rectangular
    corpus entries drop out of that profile.
    """
    from ..machine.workloads import predict_workload

    arch = arch or get_architecture("Milan B")
    model = PerfModel(arch)
    names = list(ALL_ORDERINGS)
    costs_bw = {o: [] for o in names}
    costs_prof = {o: [] for o in names}
    costs_off = {o: [] for o in names}
    costs_time = {o: [] for o in names}
    costs_wl = {w: {o: [] for o in names} for w in workloads}
    for entry in corpus:
        a = entry.matrix
        for o in names:
            if o == "original":
                m = a
            else:
                r = cache.get(a, entry.name, o, nparts=arch.gp_parts,
                              seed=seed)
                m = r.apply(a)
            costs_bw[o].append(bandwidth(m))
            costs_prof[o].append(profile(m))
            costs_off[o].append(offdiagonal_nonzeros(m, arch.threads))
            pred = model.predict(m, schedule_1d(m, arch.threads))
            costs_time[o].append(pred.seconds)
            for w in workloads:
                if w == "spgemm" and not m.is_square:
                    continue
                wp = predict_workload(m, w, arch, pred)
                costs_wl[w][o].append(wp.seconds)
    out = {
        "bandwidth": performance_profile(costs_bw),
        "profile": performance_profile(costs_prof),
        "offdiag": performance_profile(costs_off),
        "spmv_time": performance_profile(costs_time),
    }
    for w in workloads:
        if any(costs_wl[w][o] for o in names):
            out[f"{w}_time"] = performance_profile(costs_wl[w])
    return out


# ----------------------------------------------------------------------
# Figure 6: Cholesky fill
# ----------------------------------------------------------------------
def experiment_cholesky_fill(corpus, cache: OrderingCache, seed=0) -> dict:
    """Fill ratio distributions per ordering over the SPD subset.

    Gray is excluded (unsymmetric, §4.6).  Returns
    {ordering: five-number-summary, "_raw": {ordering: list}}.
    """
    spd = [e for e in corpus if e.spd]
    if not spd:
        raise HarnessError("corpus holds no SPD entries")
    symmetric_orderings = [o for o in ALL_ORDERINGS if o != "Gray"]
    raw = {o: [] for o in symmetric_orderings}
    for entry in spd:
        a = entry.matrix
        for o in symmetric_orderings:
            if o == "original":
                raw[o].append(fill_ratio(a))
            else:
                r = cache.get(a, entry.name, o, nparts=64, seed=seed)
                raw[o].append(fill_ratio(a, r))
    out = {o: boxplot_summary(v) for o, v in raw.items()}
    out["_raw"] = raw
    return out


# ----------------------------------------------------------------------
# Table 5: reordering overhead
# ----------------------------------------------------------------------
TABLE5_MATRICES = ("delaunay_n24", "europe_osm", "Flan_1565", "HV15R",
                   "indochina-2004", "kmer_V1r", "kron_g500-logn21",
                   "mycielskian19", "nlpkkt240", "vas_stokes_4M")


def experiment_overhead(scale: float = 1.0, seed=0,
                        arch_name: str = "Ice Lake") -> list:
    """Measure wall-clock reordering time per algorithm for the ten
    Table 5 stand-ins, plus the modelled single-iteration SpMV time.

    Returns rows ``[matrix, t_RCM, t_AMD, t_ND, t_GP, t_HP, t_Gray,
    t_spmv]`` in seconds, mirroring the table's layout.
    """
    from ..reorder import compute_ordering

    arch = get_architecture(arch_name)
    model = PerfModel(arch)
    rows = []
    for name in TABLE5_MATRICES:
        entry = named_matrix(name, scale=scale, seed=seed)
        a = entry.matrix
        row = [name]
        for o in ("RCM", "AMD", "ND", "GP", "HP", "Gray"):
            with Timer() as t:
                compute_ordering(a, o, nparts=arch.gp_parts, seed=seed)
            row.append(t.elapsed)
        pred = model.predict(a, schedule_1d(a, arch.threads))
        row.append(pred.seconds)
        rows.append(row)
    return rows


def amortization_iterations(reorder_seconds: float, spmv_before: float,
                            speedup: float) -> float:
    """§4.7's break-even count: SpMV iterations needed before reordering
    pays for itself (infinite if the reordering does not speed SpMV up).
    """
    if speedup <= 1.0:
        return float("inf")
    saved_per_iter = spmv_before * (1.0 - 1.0 / speedup)
    return reorder_seconds / saved_per_iter


# ----------------------------------------------------------------------
# §4.2 dense reference and §4.3 2D-vs-1D comparison
# ----------------------------------------------------------------------
def dense_reference_experiment(arch_name: str = "Milan B",
                               scale: float = 0.1) -> dict:
    """The tall-skinny dense CSR calibration point (§4.2)."""
    from ..machine.model import BYTES_PER_NNZ

    arch = get_architecture(arch_name)
    a = tall_skinny_dense_csr(nrows=int(96_000 * scale),
                              ncols=int(4_000 * scale), seed=0)
    model = PerfModel(arch)
    pred = model.predict(a, schedule_1d(a, arch.threads))
    achieved_bw = BYTES_PER_NNZ * a.nnz / pred.seconds
    return {
        "arch": arch_name,
        "gflops": pred.gflops,
        "bytes_per_second": achieved_bw,
        "fraction_of_peak": achieved_bw / arch.bandwidth,
        "llc_residency": pred.llc_residency,
    }


def two_d_vs_one_d(sweep: SweepResult, arch: str,
                   ordering: str = "original") -> np.ndarray:
    """Per-matrix speedup of the 2D kernel over the 1D kernel with the
    same ordering (§4.3's quartile discussion)."""
    ratios = []
    for m in sweep.matrices():
        r1 = sweep.lookup(m, ordering, "1d", arch)
        r2 = sweep.lookup(m, ordering, "2d", arch)
        ratios.append(r2.gflops_max / r1.gflops_max)
    return np.array(ratios)
