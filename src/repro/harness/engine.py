"""Parallel, resumable sweep engine with fault tolerance.

The paper's core artifact is a (matrix × ordering × architecture ×
kernel) grid; :class:`SweepEngine` executes that grid

* **in parallel** — tasks fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, chunked by matrix
  so every ordering of one matrix is computed in the same worker and
  the per-worker :class:`OrderingCache` pays the reordering cost once
  across all architectures; a dead worker breaks only its round, not
  the sweep (the pool is rebuilt and unfinished tasks resubmitted);
* **resumably** — every completed cell is journaled to an append-only
  JSONL checkpoint, so an interrupted sweep restarted with
  ``resume=True`` skips finished cells (a torn final line is simply
  recomputed);
* **fault-tolerantly** — each cell runs under a wall-clock budget with
  bounded retries; an ordering that raises or times out produces a
  structured :class:`FailedCell` and the sweep keeps going.

Observability is threaded through the run via :mod:`repro.obs`:
every stage of every cell runs under a **span** (``reorder`` /
``reuse_stats`` / ``model_eval``, nested inside one ``sweep.task``
span per matrix), workers ship their buffered trace events and a
**metrics-registry delta** back with each task outcome, and the
engine merges both — spans into the global tracer (one Perfetto lane
per worker pid), deltas into a run-local
:class:`~repro.obs.metrics.MetricsRegistry`.  Because each worker
reports only the work it did, and only when a task *finishes*, a
worker that dies mid-chunk loses its own partial counts but can never
corrupt or double-count the engine's: its cells are recomputed and
counted exactly once by whoever completes them.  The aggregate —
per-stage wall-clock timings, cache hit rates, model-statistics reuse
counters, worker utilization, cell counts and the full registry
snapshot — serialises to ``sweep_metrics.json``
(:class:`SweepMetrics` is a thin view over the registry), and a
:class:`~repro.obs.manifest.RunManifest` is written next to it.

Worker death is survived, not just journaled around: the process pool
is a :class:`concurrent.futures.ProcessPoolExecutor`, and when it
breaks (a worker was OOM-killed or segfaulted) the engine rebuilds it
and resubmits the unfinished tasks — shrunk by every cell consumed so
far — within a bounded crash budget; cells that keep killing workers
become structured :class:`FailedCell` rows with ``stage="worker"``.

Within one matrix the task loop is *ordering-outer*: each (ordering,
nparts) permutation is computed once, and the reordered matrix —
together with its memoised :class:`~repro.machine.reuse.ReuseStats`
and thread schedules — is shared across every architecture and kernel
cell evaluated on it (see docs/perfmodel.md).
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import time
from concurrent.futures import as_completed
from concurrent.futures.process import (BrokenProcessPool,
                                        ProcessPoolExecutor)
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace

from ..errors import HarnessError
from ..machine.bench import MeasurementRecord, simulate_measurement
from ..machine.model import PerfModel
from ..machine.reuse import ReuseStats
from ..obs import cachestats
from ..obs import manifest as _manifest
from ..obs.metrics import REGISTRY, MetricsRegistry
from ..obs.trace import (TRACER, clear_trace_context, new_span_id,
                         set_trace_context, span)
from . import shm as _shm

JOURNAL_VERSION = 1

#: registry-counter → legacy ``sweep_metrics.json`` ``model_stats``
#: key mapping (the metrics artifact is now a view over the registry).
_MODEL_STAT_NAMES = {
    "reuse.builds": "reuse_builds", "reuse.hits": "reuse_hits",
    "schedule.builds": "schedule_builds",
    "schedule.hits": "schedule_hits",
}


class CellTimeout(HarnessError):
    """A sweep cell exceeded its wall-clock budget."""


@dataclass(frozen=True)
class FailedCell:
    """A structured record of one cell the sweep could not complete.

    ``stage`` names where the failure happened (``"reorder"``,
    ``"model-eval"``, or ``"worker"`` when the worker process hosting
    the cell kept dying); ``error`` is the exception class name,
    ``message`` its text.  ``attempts`` counts tries including retries.
    """

    matrix: str
    ordering: str
    kernel: str
    architecture: str
    stage: str
    error: str
    message: str
    attempts: int = 1
    seconds: float = 0.0

    @property
    def cell(self) -> tuple:
        return (self.matrix, self.ordering, self.kernel,
                self.architecture)


@contextmanager
def _deadline(seconds):
    """Raise :class:`CellTimeout` if the block runs past ``seconds``.

    Uses ``SIGALRM``, so it is a no-op off the main thread or on
    platforms without it — worker processes always qualify.
    """
    usable = (seconds is not None and seconds > 0
              and hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise CellTimeout(f"cell exceeded its {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# JSONL checkpoint journal
# ----------------------------------------------------------------------
class SweepJournal:
    """Append-only JSONL checkpoint of completed sweep cells.

    Line 1 is a header carrying the sweep *signature* (corpus,
    architectures, orderings, kernels, seed); every later line is one
    ``record`` or ``failed`` entry keyed by its cell.  The format is
    torn-write tolerant: a line that does not parse (the tail of a
    killed process) is ignored and its cell recomputed on resume.
    """

    def __init__(self, path: str, signature: dict) -> None:
        self.path = path
        self.signature = signature
        self._fh = None

    # -- reading -------------------------------------------------------
    @staticmethod
    def load(path: str) -> tuple:
        """Parse a journal into ``(signature, records, failures)``.

        ``records`` maps cell tuples to :class:`MeasurementRecord`;
        ``failures`` is the list of journaled :class:`FailedCell` rows
        (informational — failed cells stay pending on resume).
        Undecodable or incomplete lines are skipped.

        A journal with no readable entries at all — zero bytes, or only
        the torn tail of a process killed mid-header — parses as
        ``(None, {}, [])``: an interrupted sweep that never journaled
        anything has simply completed no cells, and resuming from it
        must start fresh rather than error.  Readable *entries* under a
        missing header are different: that journal carries data whose
        signature cannot be verified, so it raises.
        """
        signature = None
        records: dict = {}
        failures: list = []
        with open(path, "rt") as f:
            for line in f:
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, ValueError):
                    continue  # torn write from a killed process
                if not isinstance(entry, dict):
                    continue
                kind = entry.get("type")
                try:
                    if kind == "header":
                        signature = entry["signature"]
                    elif kind == "record":
                        rec = MeasurementRecord(**entry["data"])
                        records[tuple(entry["cell"])] = rec
                    elif kind == "failed":
                        failures.append(FailedCell(**entry["data"]))
                except (KeyError, TypeError):
                    continue  # partially-written or foreign entry
        if signature is None and (records or failures):
            raise HarnessError(
                f"{path}: journal has entries but no readable header "
                "line; cannot verify it belongs to this sweep")
        return signature, records, failures

    # -- writing -------------------------------------------------------
    @staticmethod
    def _trim_torn_tail(path: str) -> int:
        """Drop a torn final line (no trailing newline) left by a
        killed process, so appended entries start on a fresh line.
        Returns the resulting file size."""
        with open(path, "rb+") as f:
            data = f.read()
            if not data or data.endswith(b"\n"):
                return len(data)
            keep = data.rfind(b"\n") + 1
            f.truncate(keep)
            return keep

    def open(self, append: bool) -> None:
        append = append and os.path.exists(self.path)
        if append and self._trim_torn_tail(self.path) == 0:
            append = False  # nothing valid survived: start fresh
        self._fh = open(self.path, "at" if append else "wt")
        if not append:
            self._write({"type": "header", "version": JOURNAL_VERSION,
                         "signature": self.signature})

    def _write(self, entry: dict) -> None:
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()

    def append_record(self, cell: tuple, rec: MeasurementRecord) -> None:
        self._write({"type": "record", "cell": list(cell),
                     "data": asdict(rec)})

    def append_failure(self, failure: FailedCell) -> None:
        self._write({"type": "failed", "cell": list(failure.cell),
                     "data": asdict(failure)})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
@dataclass
class SweepMetrics:
    """Machine-readable observability artifact of one engine run.

    Since the obs layer landed this is a thin *view*: ``model_stats``
    and ``registry`` are populated from the engine's run-local
    :class:`~repro.obs.metrics.MetricsRegistry` (the merge of every
    worker's shipped delta), not from hand-maintained dicts.
    """

    jobs: int = 1
    wall_seconds: float = 0.0
    run_id: str | None = None
    stages: dict = field(default_factory=lambda: {
        "generate": 0.0, "serialize": 0.0, "storage": 0.0,
        "reorder": 0.0, "reuse_stats": 0.0, "model_eval": 0.0})
    cache: dict = field(default_factory=dict)
    model_stats: dict = field(default_factory=lambda: {
        "reuse_builds": 0, "reuse_hits": 0,
        "schedule_builds": 0, "schedule_hits": 0})
    cells: dict = field(default_factory=lambda: {
        "total": 0, "completed": 0, "resumed": 0, "failed": 0,
        "retried": 0})
    workers: dict = field(default_factory=lambda: {
        "busy_seconds": {}, "utilization": 0.0, "crash_rounds": 0,
        "shards": 1})
    registry: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def save(self, path) -> None:
        with open(path, "wt") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class _TaskSpec:
    """One unit of pool work: every pending cell of one matrix.

    ``transport`` names how the matrix travels to the worker:

    * ``"inline"`` — ``entry.matrix`` is the matrix (serial runs);
    * ``"shm"`` — ``entry.matrix`` is ``None`` and ``matrix_ref`` is a
      :class:`~repro.harness.shm.ShmMatrixHandle` the worker attaches
      to (zero-copy);
    * ``"memmap"`` — ``matrix_ref`` is the path of a stored matrix
      (:mod:`repro.storage.format`); workers memmap it read-only
      (zero-copy like shm, but disk-backed: the mapping survives
      worker death and its pages are reclaimable, so a sharded sweep's
      RSS stays bounded);
    * ``"pickle"`` — ``entry.matrix`` is ``None`` and ``matrix_ref``
      holds explicitly pickled bytes (the fallback when shared memory
      is unavailable or disabled; keeping the pickling explicit lets
      both sides *time* it — see the ``serialize`` stage).
    """

    entry: object                # CorpusEntry (metadata; see transport)
    pending: frozenset           # cells still to compute
    transport: str = "inline"
    matrix_ref: object = None    # ShmMatrixHandle | bytes | path | None


@dataclass
class _TaskOutcome:
    records: list                # [(cell, MeasurementRecord), ...]
    failures: list               # [FailedCell, ...]
    timings: dict                # stage -> seconds
    cache_stats: dict
    registry_delta: dict         # MetricsRegistry.delta_since payload
    trace_events: list           # buffered spans (empty when disabled)
    retried: int
    pid: int
    busy_seconds: float


@dataclass
class _EngineConfig:
    """Everything a worker needs; must be picklable for jobs > 1."""

    architectures: list
    orderings: list              # without "original"
    kernels: tuple
    seed: object
    timeout: float | None
    retries: int
    cache_path: str | None
    model_factory: object | None
    trace: bool = False
    #: (trace_id, root span_id) of the engine's ``sweep.run`` span;
    #: workers install it so their spans carry correlation ids and
    #: parent to the engine's root across process boundaries
    trace_ctx: tuple | None = None


_WORKER_CONFIG: _EngineConfig | None = None


def _pool_init(config: _EngineConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config
    # fork-started workers inherit the engine's buffered events (the
    # pre-fork serialize spans from _pack_task); drop them so the first
    # drain ships only spans this worker recorded itself.
    TRACER.clear()
    if config.trace and not TRACER.enabled:
        TRACER.enable()
    if config.trace_ctx is not None:
        # every top-level span this worker opens parents to the
        # engine's sweep.run root (the thread-local stack is empty
        # here, so the context's parent_id is used)
        set_trace_context(*config.trace_ctx)


def _pool_run(task: _TaskSpec) -> _TaskOutcome:
    return _run_matrix_task(task, _WORKER_CONFIG)


def _resolve_task_matrix(task: _TaskSpec, timings: dict):
    """Materialise the task's matrix on the worker side.

    Shared-memory attach (zero-copy, memoised per worker process) or
    explicit unpickle, timed into the ``serialize`` stage; a memmap
    attach (also zero-copy and memoised) times into the ``storage``
    stage; inline transport is free.
    """
    if task.transport == "inline":
        return task.entry.matrix
    if task.transport == "memmap":
        from ..storage import format as _storage

        t0 = time.perf_counter()
        with span("storage", matrix=task.entry.name,
                  transport="memmap", side="worker"):
            a = _storage.attach_matrix(task.matrix_ref)
        timings["storage"] += time.perf_counter() - t0
        return a
    t0 = time.perf_counter()
    with span("serialize", matrix=task.entry.name,
              transport=task.transport, side="worker"):
        if task.transport == "shm":
            a = _shm.attach_matrix(task.matrix_ref)
        elif task.transport == "pickle":
            a = pickle.loads(task.matrix_ref)
        else:
            raise HarnessError(
                f"unknown task transport {task.transport!r}")
    timings["serialize"] += time.perf_counter() - t0
    return a


def _run_matrix_task(task: _TaskSpec, config: _EngineConfig,
                     cache=None) -> _TaskOutcome:
    """Compute every pending cell of one matrix.

    The loop is ordering-outer: each (ordering, nparts) permutation is
    computed once (with a disk-backed cache it also persists across
    runs) and the reordered matrix is then evaluated for *every*
    architecture and kernel in one pass, so its memoised reuse
    statistics and thread schedules are shared across all of those
    cells.  Only GP splits into per-``gp_parts`` architecture groups
    (its permutation depends on the part count); every other ordering
    forms a single group.  Tasks are disjoint by matrix, so concurrent
    workers never write the same cache entry.
    """
    from .runner import OrderingCache  # local import: avoids a cycle

    start = time.perf_counter()
    if cache is None:
        cache = OrderingCache(path=config.cache_path)
    stats_before = dict(cache.stats)
    registry_before = REGISTRY.snapshot()
    factory = config.model_factory or PerfModel
    entry = task.entry
    records: list = []
    failures: list = []
    timings = {"serialize": 0.0, "storage": 0.0, "reorder": 0.0,
               "reuse_stats": 0.0, "model_eval": 0.0}
    a = _resolve_task_matrix(task, timings)
    retried = 0
    models = [(arch, factory(arch)) for arch in config.architectures]

    def eval_cells(matrix, ordering_name, group) -> None:
        """Evaluate every pending (arch, kernel) cell of one reordered
        matrix, with one shared reuse-statistics pass."""
        wanted = [(arch, model, kernel) for arch, model in group
                  for kernel in config.kernels
                  if (entry.name, ordering_name, kernel,
                      arch.name) in task.pending]
        if not wanted:
            return
        reuse = None
        if any(model.fastpath for _, model, _ in wanted):
            # materialise the shared statistics up front so their cost
            # lands in the reuse_stats stage, not a random first cell
            hot_lines = sorted({arch.line_size // 8
                                for arch, model, _ in wanted
                                if model.fastpath and model.locality_term})
            t0 = time.perf_counter()
            with span("reuse_stats", matrix=entry.name,
                      ordering=ordering_name):
                reuse = ReuseStats.for_matrix(matrix)
                reuse.prepare(hot_lines if matrix.nnz else ())
            timings["reuse_stats"] += time.perf_counter() - t0
        for arch, model, kernel in wanted:
            cell = (entry.name, ordering_name, kernel, arch.name)
            t0 = time.perf_counter()
            try:
                with _deadline(config.timeout), \
                        span("model_eval", matrix=entry.name,
                             ordering=ordering_name, kernel=kernel,
                             arch=arch.name):
                    rec = simulate_measurement(
                        matrix, arch, kernel, entry.name, ordering_name,
                        model=model,
                        reuse=reuse if model.fastpath else None)
            except Exception as exc:  # noqa: BLE001 - fault isolation
                failures.append(FailedCell(
                    matrix=entry.name, ordering=ordering_name,
                    kernel=kernel, architecture=arch.name,
                    stage="model-eval", error=type(exc).__name__,
                    message=str(exc), attempts=1,
                    seconds=time.perf_counter() - t0))
            else:
                records.append((cell, rec))
            finally:
                timings["model_eval"] += time.perf_counter() - t0

    with span("sweep.task", matrix=entry.name,
              cells=len(task.pending)):
        eval_cells(a, "original", models)
        for name in config.orderings:
            groups: dict = {}
            for arch, model in models:
                key = arch.gp_parts if name == "GP" else 0
                groups.setdefault(key, []).append((arch, model))
            for group in groups.values():
                group_cells = [(entry.name, name, kernel, arch.name)
                               for arch, _ in group
                               for kernel in config.kernels]
                if not any(c in task.pending for c in group_cells):
                    continue
                t0 = time.perf_counter()
                result = None
                error = None
                attempts = 0
                for attempt in range(config.retries + 1):
                    attempts = attempt + 1
                    try:
                        with _deadline(config.timeout), \
                                span("reorder", matrix=entry.name,
                                     algo=name, attempt=attempts):
                            result = cache.get(
                                a, entry.name, name,
                                nparts=group[0][0].gp_parts,
                                seed=config.seed)
                        break
                    except Exception as exc:  # noqa: BLE001
                        error = exc
                        if attempt < config.retries:
                            retried += 1
                timings["reorder"] += time.perf_counter() - t0
                if result is None:
                    for cell in group_cells:
                        if cell not in task.pending:
                            continue
                        failures.append(FailedCell(
                            matrix=entry.name, ordering=name,
                            kernel=cell[2], architecture=cell[3],
                            stage="reorder", error=type(error).__name__,
                            message=str(error), attempts=attempts,
                            seconds=time.perf_counter() - t0))
                    continue
                eval_cells(result.apply(a), name, group)

    # report *deltas* so caches/counters shared across serial tasks are
    # not double counted when the engine aggregates per-task stats —
    # and so a worker that dies before returning contributes nothing
    # rather than something partial
    stats_after = cache.stats
    delta = {k: stats_after.get(k, 0) - stats_before.get(k, 0)
             for k in ("hits", "disk_hits", "misses", "requests",
                       "evictions", "size_bytes", "mapped_bytes")}
    return _TaskOutcome(
        records=records, failures=failures, timings=timings,
        cache_stats=delta,
        registry_delta=REGISTRY.delta_since(registry_before),
        trace_events=TRACER.drain() if config.trace else [],
        retried=retried,
        pid=os.getpid(), busy_seconds=time.perf_counter() - start)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class SweepEngine:
    """Parallel, journaled, fault-tolerant sweep executor.

    Parameters
    ----------
    corpus, architectures, orderings, kernels, cache, model_factory,
    seed:
        As in :func:`repro.harness.runner.run_sweep` (which is now a
        thin serial wrapper over this class).
    jobs:
        Worker process count; ``1`` runs inline (no multiprocessing),
        which also preserves the caller's in-memory ``cache`` and
        allows non-picklable ``model_factory`` hooks.
    journal_path:
        JSONL checkpoint file.  ``None`` disables journaling.
    resume:
        Load the journal first and skip its completed cells.  The
        journal's signature must match this sweep's configuration.
    timeout:
        Per-cell wall-clock budget in seconds (``None`` = unlimited).
    retries:
        Extra attempts for a failing/timed-out ordering computation
        (also bounds pool rebuilds after worker deaths).
    progress:
        Optional ``f(done, total, failed, elapsed)`` heartbeat callback,
        invoked as tasks complete.
    trace:
        Record spans for every stage of every cell (workers included).
        ``None`` (default) inherits the global tracer's enabled state,
        so ``repro.obs.enable()`` before ``run()`` is enough.
    manifest_path:
        Where to write the :class:`~repro.obs.manifest.RunManifest`.
        ``None`` disables it.
    shared_memory:
        Legacy transport switch, kept for compatibility: ``True`` maps
        to ``transport="shm"``, ``False`` to ``transport="pickle"``,
        ``None`` to ``transport="auto"``.  Ignored when ``transport``
        is given explicitly.
    transport:
        Matrix transport policy for pool runs: ``"shm"`` (shared-memory
        segments, pickle fallback), ``"memmap"`` (stored matrices
        attached read-only from disk — snapshot-backed entries map
        their snapshot directly, in-RAM matrices are spilled to a
        temporary store first), ``"pickle"`` (explicit bytes), or
        ``"auto"`` (default: memmap when every corpus entry is
        snapshot-backed, shm otherwise).  Serial (inline) runs ignore
        this — the matrix never leaves the process.
    shard_bytes:
        Upper bound on the summed matrix bytes in flight per pool
        round.  When set, tasks are partitioned into consecutive
        byte-bounded shards, each run on a **fresh** process pool whose
        workers are torn down before the next shard starts — so peak
        RSS tracks the largest shard, not the whole corpus.  ``None``
        (default) runs everything in one shard.
    snapshot:
        The :class:`~repro.storage.snapshot.CorpusSnapshot` backing
        ``corpus``, if any.  Folds the snapshot's content address into
        the sweep signature (so ``--resume`` only reattaches the
        *identical* corpus bytes) and into the run manifest (so
        ``repro report --check`` can cross-check the snapshot
        directory against the journal's provenance).
    """

    def __init__(self, corpus, architectures, orderings,
                 kernels: tuple = ("1d", "2d"), cache=None,
                 model_factory=None, seed=0, jobs: int = 1,
                 journal_path: str | None = None, resume: bool = False,
                 timeout: float | None = None, retries: int = 0,
                 progress=None, trace: bool | None = None,
                 manifest_path: str | None = None,
                 shared_memory: bool | None = None,
                 transport: str | None = None,
                 shard_bytes: int | None = None,
                 snapshot=None) -> None:
        if jobs < 1:
            raise HarnessError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise HarnessError(f"retries must be >= 0, got {retries}")
        if transport is None:
            transport = {None: "auto", True: "shm",
                         False: "pickle"}[shared_memory]
        if transport not in ("auto", "shm", "memmap", "pickle"):
            raise HarnessError(
                f"unknown transport {transport!r} "
                "(expected auto, shm, memmap or pickle)")
        if shard_bytes is not None and shard_bytes <= 0:
            raise HarnessError(
                f"shard_bytes must be positive, got {shard_bytes}")
        self.corpus = list(corpus)
        self.architectures = list(architectures)
        self.orderings = [o for o in orderings if o != "original"]
        self.kernels = tuple(kernels)
        self.cache = cache
        self.model_factory = model_factory
        self.seed = seed
        self.jobs = jobs
        self.journal_path = journal_path
        self.resume = resume
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.trace = trace
        self.manifest_path = manifest_path
        self.transport = transport
        self.shard_bytes = shard_bytes
        self.snapshot = snapshot
        self.metrics = SweepMetrics(jobs=jobs)
        #: run-local merge target of every worker's registry delta
        self.registry = MetricsRegistry()
        #: shared-memory segments this engine created (owned: unlinked
        #: in ``run()``'s finally, whatever happened to the workers)
        self._segments: list = []
        #: temporary on-disk store for matrices spilled by the memmap
        #: transport (never a user snapshot; removed in ``run()``)
        self._spill_dir: str | None = None

    # -- cell enumeration ---------------------------------------------
    def signature(self) -> dict:
        sig = {
            "corpus": [e.name for e in self.corpus],
            "architectures": [a.name for a in self.architectures],
            "orderings": list(self.orderings),
            "kernels": list(self.kernels),
            "seed": self.seed if isinstance(self.seed, int) else None,
        }
        if self.snapshot is not None:
            # content address, not path: resume must reattach the same
            # corpus *bytes*, wherever the snapshot directory lives
            sig["snapshot"] = self.snapshot.signature
        return sig

    def cells(self) -> list:
        """Canonical cell order — identical to the legacy serial
        runner's record order, so results assemble reproducibly no
        matter which worker finished first."""
        out = []
        for arch in self.architectures:
            for entry in self.corpus:
                for kernel in self.kernels:
                    out.append((entry.name, "original", kernel, arch.name))
                for name in self.orderings:
                    for kernel in self.kernels:
                        out.append((entry.name, name, kernel, arch.name))
        return out

    # -- resume --------------------------------------------------------
    def _load_checkpoint(self) -> dict:
        if not (self.journal_path and self.resume
                and os.path.exists(self.journal_path)):
            return {}
        signature, records, _old_failures = SweepJournal.load(
            self.journal_path)
        if signature is None:
            return {}  # empty/torn-only journal: no completed cells
        if signature != self.signature():
            raise HarnessError(
                f"{self.journal_path}: journal signature does not match "
                "this sweep (different corpus/architectures/orderings/"
                "kernels/seed); delete it or run without resume")
        return records

    # -- execution -----------------------------------------------------
    def run(self):
        from .runner import OrderingCache, SweepResult

        t_start = time.perf_counter()
        trace_on = (TRACER.enabled if self.trace is None else self.trace)
        all_cells = self.cells()
        completed = self._load_checkpoint()
        # drop journal entries for cells not in this sweep's grid (the
        # signature check makes this impossible, but stay defensive)
        completed = {c: r for c, r in completed.items()
                     if c in set(all_cells)}
        self.metrics.cells["total"] = len(all_cells)
        self.metrics.cells["resumed"] = len(completed)

        manifest = None
        if self.manifest_path:
            config_doc = {"jobs": self.jobs, "timeout": self.timeout,
                          "retries": self.retries, "resume": self.resume,
                          "trace": trace_on,
                          "journal": self.journal_path,
                          "kernels": list(self.kernels),
                          "transport": self.transport,
                          "shard_bytes": self.shard_bytes}
            if self.snapshot is not None:
                config_doc["snapshot"] = {
                    "path": self.snapshot.path,
                    "signature": self.snapshot.signature}
            manifest = _manifest.collect(
                seed=self.seed, signature=self.signature(),
                config=config_doc)
            # written up front so even a crashed run has provenance
            manifest.write(self.manifest_path)
            self.metrics.run_id = manifest.run_id

        journal = None
        if self.journal_path:
            journal = SweepJournal(self.journal_path, self.signature())
            journal.open(append=self.resume)

        pending = [c for c in all_cells if c not in completed]
        by_matrix: dict = {}
        for cell in pending:
            by_matrix.setdefault(cell[0], set()).add(cell)
        tasks = [_TaskSpec(entry=e, pending=frozenset(by_matrix[e.name]))
                 for e in self.corpus if e.name in by_matrix]
        use_pool = self.jobs > 1 and len(tasks) > 1

        # With tracing live, the whole run happens inside one root
        # ``sweep.run`` span under a trace context: every local span
        # gets correlation ids, and workers (via ``trace_ctx`` in the
        # picklable config) parent their top-level spans to this root,
        # so a merged trace is one causally-linked tree, not a soup of
        # disjoint per-process lanes.
        root_span = None
        trace_ctx = None
        if trace_on and TRACER.enabled:
            trace_id = self.metrics.run_id or f"sweep-{new_span_id()}"
            set_trace_context(trace_id)
            root_span = TRACER.span(
                "sweep.run", jobs=self.jobs, transport=self.transport,
                cells=len(all_cells)).__enter__()
            trace_ctx = (trace_id, root_span.span_id)

        config = _EngineConfig(
            architectures=self.architectures, orderings=self.orderings,
            kernels=self.kernels, seed=self.seed, timeout=self.timeout,
            retries=self.retries,
            cache_path=self.cache.path if self.cache is not None else None,
            model_factory=self.model_factory, trace=trace_on,
            trace_ctx=trace_ctx)

        failures: list = []
        done_cells = len(completed)
        busy: dict = {}
        if self.progress is not None:
            # first tick up front: a resumed sweep reports its journal
            # backfill before any new cell completes
            self.progress(done_cells, len(all_cells), 0, 0.0)

        def consume(outcome: _TaskOutcome) -> None:
            nonlocal done_cells
            for cell, rec in outcome.records:
                completed[cell] = rec
                if journal is not None:
                    journal.append_record(cell, rec)
            for failure in outcome.failures:
                failures.append(failure)
                if journal is not None:
                    journal.append_failure(failure)
            done_cells += len(outcome.records) + len(outcome.failures)
            for stage, secs in outcome.timings.items():
                self.metrics.stages[stage] = (
                    self.metrics.stages.get(stage, 0.0) + secs)
            self.metrics.cells["retried"] += outcome.retried
            self._merge_cache_stats(outcome.cache_stats)
            # delta-merge the worker's registry: each outcome reports
            # only its own work, so totals are exact across retries,
            # resumes and worker deaths
            self.registry.merge_delta(outcome.registry_delta)
            TRACER.merge(outcome.trace_events)
            busy[outcome.pid] = (busy.get(outcome.pid, 0.0)
                                 + outcome.busy_seconds)
            if self.progress is not None:
                self.progress(done_cells, len(all_cells), len(failures),
                              time.perf_counter() - t_start)

        try:
            if not use_pool:
                cache = self.cache or OrderingCache()
                self.cache = cache
                for task in tasks:
                    consume(_run_matrix_task(task, config, cache=cache))
            else:
                # one fresh pool per shard: tearing workers down at the
                # shard boundary returns their RSS (and any shm
                # segments / spilled matrices) before the next batch of
                # matrices is put in flight, so peak memory tracks the
                # largest shard, not the corpus
                shards = self._shard_tasks(tasks)
                self.metrics.workers["shards"] = len(shards)
                for shard in shards:
                    packed = [self._pack_task(t) for t in shard]
                    self._run_pool(packed, config, completed, failures,
                                   consume, journal)
                    self._release_segments()
                    self._release_spill()
        finally:
            if journal is not None:
                journal.close()
            self._release_segments()
            self._release_spill()
            if root_span is not None:
                root_span.__exit__(None, None, None)
                clear_trace_context()

        wall = time.perf_counter() - t_start
        self.metrics.wall_seconds = wall
        self.metrics.cells["completed"] = len(completed)
        self.metrics.cells["failed"] = len(failures)
        self.metrics.workers["busy_seconds"] = {
            str(pid): round(secs, 6) for pid, secs in busy.items()}
        denom = wall * max(1, min(self.jobs, max(1, len(tasks))))
        self.metrics.workers["utilization"] = (
            sum(busy.values()) / denom if denom > 0 else 0.0)
        # the metrics artifact is a view over the merged registry
        reg_values = self.registry.values()
        self.metrics.model_stats = {
            legacy: reg_values.get(name, 0)
            for name, legacy in _MODEL_STAT_NAMES.items()}
        self.metrics.registry = self.registry.snapshot()

        result = SweepResult(failed=failures)
        for cell in all_cells:
            if cell in completed:
                result.add(completed[cell])
        return result

    # -- matrix transport ---------------------------------------------
    @staticmethod
    def _entry_nbytes(entry) -> int:
        """On-the-wire CSR bytes of one corpus entry (rowptr int64 +
        colidx int64 + values float64), computable from metadata alone
        — no array access, so snapshot-backed entries stay unmapped."""
        return (entry.nrows + 1) * 8 + entry.nnz * 16

    def _shard_tasks(self, tasks: list) -> list:
        """Partition tasks into consecutive byte-bounded shards.

        Order is preserved (resume and journal replay see the same
        sequence); every shard gets at least one task, so a single
        matrix larger than the budget still runs — as one shard by
        itself, which is the best a matrix-granular scheduler can do.
        """
        if self.shard_bytes is None:
            return [tasks]
        shards: list = []
        current: list = []
        current_bytes = 0
        for task in tasks:
            nbytes = self._entry_nbytes(task.entry)
            if current and current_bytes + nbytes > self.shard_bytes:
                shards.append(current)
                current, current_bytes = [], 0
            current.append(task)
            current_bytes += nbytes
        if current:
            shards.append(current)
        return shards

    @staticmethod
    def _strip_entry(entry):
        """Return ``entry`` without its in-RAM matrix payload.

        Snapshot-backed :class:`~repro.storage.snapshot.StoredEntry`
        objects carry no matrix field at all (their ``matrix`` is a
        lazy attach), so they pass through unchanged.
        """
        if "matrix" in getattr(entry, "__dataclass_fields__", {}):
            return replace(entry, matrix=None)
        return entry

    def _spill_matrix(self, entry) -> str:
        """Write an in-RAM matrix to the engine's temporary store so
        the memmap transport can ship a path instead of bytes."""
        import tempfile

        from ..storage import format as _storage

        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro_spill_")
        path = os.path.join(self._spill_dir, entry.name)
        if not os.path.isdir(path):
            _storage.write_matrix(path, entry.matrix,
                                  meta={"name": entry.name,
                                        "spilled": True})
        return path

    def _pack_task(self, task: _TaskSpec) -> _TaskSpec:
        """Strip the matrix out of a pool-bound task.

        Under the memmap policy the task ships the path of a stored
        matrix (the entry's own snapshot directory when it has one,
        else a spill into a temporary store), timed into the
        ``storage`` stage.  Otherwise the matrix is exported to a
        shared-memory segment (engine-owned; workers attach zero-copy)
        or, when shared memory is disabled or either export fails,
        pickled explicitly — timed into ``serialize``.  Either way the
        entry travels without its matrix payload, which never rides
        the pool's pickle pipe twice.
        """
        transport, ref = "pickle", None
        policy = self.transport
        if policy == "auto":
            policy = ("memmap" if getattr(task.entry, "storage_path",
                                          None) else "shm")
        if policy == "memmap":
            t0 = time.perf_counter()
            with span("storage", matrix=task.entry.name, side="engine"):
                try:
                    path = (getattr(task.entry, "storage_path", None)
                            or self._spill_matrix(task.entry))
                except Exception:  # noqa: BLE001 - disk full etc.
                    path = None
            self.metrics.stages["storage"] += time.perf_counter() - t0
            if path is not None:
                return replace(task, entry=self._strip_entry(task.entry),
                               transport="memmap", matrix_ref=path)
        a = task.entry.matrix
        t0 = time.perf_counter()
        with span("serialize", matrix=task.entry.name, side="engine"):
            if policy == "shm":
                try:
                    handle, seg = _shm.export_matrix(a)
                except Exception:  # noqa: BLE001 - no /dev/shm etc.
                    pass
                else:
                    self._segments.append(seg)
                    transport, ref = "shm", handle
            if ref is None:
                ref = pickle.dumps(a, protocol=pickle.HIGHEST_PROTOCOL)
        self.metrics.stages["serialize"] += time.perf_counter() - t0
        return replace(task, entry=self._strip_entry(task.entry),
                       transport=transport, matrix_ref=ref)

    def _release_segments(self) -> None:
        for seg in self._segments:
            _shm.unlink_segment(seg)
        self._segments = []

    def _release_spill(self) -> None:
        """Remove the temporary spill store (never a user snapshot —
        snapshot-backed entries ship their own directories, which this
        engine does not own)."""
        if self._spill_dir is not None:
            import shutil

            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def _run_pool(self, tasks, config, completed, failures, consume,
                  journal) -> None:
        """Fan tasks out over a process pool, surviving worker death.

        A worker that dies (OOM kill, segfault) breaks the whole
        :class:`ProcessPoolExecutor`; the engine then rebuilds the pool
        and resubmits every unfinished task, shrunk by the cells
        already consumed.  The rebuild budget is bounded
        (``retries + len(tasks)`` rounds); when it is exhausted — or a
        lone task keeps killing its worker ``retries + 1`` times — the
        remaining cells become :class:`FailedCell` rows with
        ``stage="worker"`` instead of hanging the sweep.
        """
        pending: dict = {i: t for i, t in enumerate(tasks)}
        solo_crashes: dict = {}
        max_rounds = self.retries + len(tasks)
        rounds = 0

        def fail_pending(index: int, attempts: int) -> None:
            task = pending.pop(index)
            for cell in sorted(task.pending):
                if cell in completed:
                    continue
                failures.append(FailedCell(
                    matrix=cell[0], ordering=cell[1], kernel=cell[2],
                    architecture=cell[3], stage="worker",
                    error="WorkerDied",
                    message="worker process died while computing this "
                            "task's cells", attempts=attempts))
                if journal is not None:
                    journal.append_failure(failures[-1])

        while pending:
            broke = False
            try:
                with ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(pending)),
                        initializer=_pool_init,
                        initargs=(config,)) as pool:
                    futures = {pool.submit(_pool_run, t): i
                               for i, t in pending.items()}
                    for fut in as_completed(futures):
                        index = futures[fut]
                        try:
                            outcome = fut.result()
                        except BrokenProcessPool:
                            broke = True
                            continue  # stays pending; retried next round
                        except Exception as exc:  # noqa: BLE001
                            # the task function itself is
                            # exception-free, so this is infrastructure
                            # (e.g. an outcome that failed to
                            # unpickle): fail its cells
                            failures_before = len(failures)
                            fail_pending(index, attempts=1)
                            for f in failures[failures_before:]:
                                object.__setattr__(f, "error",
                                                   type(exc).__name__)
                                object.__setattr__(f, "message",
                                                   str(exc))
                            continue
                        consume(outcome)
                        del pending[index]
            except BrokenProcessPool:
                broke = True  # pool died during submission
            if not pending:
                return
            if not broke:  # pragma: no cover - defensive
                continue
            rounds += 1
            self.metrics.workers["crash_rounds"] = rounds
            if len(pending) == 1:
                index = next(iter(pending))
                solo_crashes[index] = solo_crashes.get(index, 0) + 1
                if solo_crashes[index] > self.retries:
                    fail_pending(index, attempts=solo_crashes[index])
                    continue
            if rounds >= max_rounds:
                for index in list(pending):
                    fail_pending(index, attempts=rounds)
                return
            # shrink resubmitted tasks by everything consumed so far
            # (replace() keeps the transport and matrix_ref: a rebuilt
            # pool's fresh workers re-attach to the same segments)
            for index, task in list(pending.items()):
                still = frozenset(c for c in task.pending
                                  if c not in completed)
                if still:
                    pending[index] = replace(task, pending=still)
                else:
                    del pending[index]

    def _merge_cache_stats(self, stats: dict) -> None:
        agg = self.metrics.cache
        for key in ("hits", "disk_hits", "misses", "requests",
                    "evictions", "size_bytes", "mapped_bytes"):
            agg[key] = agg.get(key, 0) + stats.get(key, 0)
        # the zero-request guard lives in the shared helper; hit_rate
        # covers both storage levels, like OrderingCache.stats
        agg["hit_rate"] = cachestats.cache_stats(
            hits=agg.get("hits", 0) + agg.get("disk_hits", 0),
            misses=agg.get("misses", 0))["hit_rate"]
