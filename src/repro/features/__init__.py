"""Order-sensitive matrix features (paper §3.2).

Four features explain reordering performance in the study:

* :func:`bandwidth` — max distance of a nonzero to the diagonal;
* :func:`profile` — per-row distance from the leftmost entry to the
  diagonal, summed;
* :func:`offdiagonal_nonzeros` — nonzeros outside the k×k diagonal
  blocks (≈ edge-cut of a row-equal partition, key finding 5);
* :func:`imbalance_factor` — max/mean nonzeros per thread of a
  schedule.
"""

from .bandwidth import bandwidth
from .profile import profile
from .offdiag import offdiagonal_nonzeros
from .imbalance import imbalance_factor, imbalance_factor_1d
from .collect import collect_features
from .locality import (
    adjacent_row_overlap,
    mean_column_span,
    row_length_entropy,
)

__all__ = [
    "bandwidth",
    "profile",
    "offdiagonal_nonzeros",
    "imbalance_factor",
    "imbalance_factor_1d",
    "collect_features",
    "mean_column_span",
    "adjacent_row_overlap",
    "row_length_entropy",
]
