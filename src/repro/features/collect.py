"""Bundle all order-sensitive features of a matrix into one record."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..matrix.csr import CSRMatrix
from .bandwidth import bandwidth
from .imbalance import imbalance_factor_1d
from .offdiag import offdiagonal_nonzeros
from .profile import profile


@dataclass(frozen=True)
class FeatureRecord:
    """The §3.2 feature vector for one (matrix, thread-count) pair."""

    nrows: int
    ncols: int
    nnz: int
    bandwidth: int
    profile: int
    offdiag_nnz: int
    imbalance_1d: float

    def as_dict(self) -> dict:
        return asdict(self)


def collect_features(a: CSRMatrix, nthreads: int) -> FeatureRecord:
    """Compute every feature for ``a`` under a ``nthreads``-way 1D split."""
    return FeatureRecord(
        nrows=a.nrows,
        ncols=a.ncols,
        nnz=a.nnz,
        bandwidth=bandwidth(a),
        profile=profile(a),
        offdiag_nnz=offdiagonal_nonzeros(a, nthreads),
        imbalance_1d=imbalance_factor_1d(a, nthreads),
    )
