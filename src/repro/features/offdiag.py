"""Off-diagonal nonzero count (paper §3.2).

Partition the matrix conceptually into ``nblocks`` × ``nblocks``
equal-sized blocks (one block row per thread under the 1D row split)
and count the nonzeros falling outside the diagonal blocks.  With unit
row weights this equals the edge-cut of the contiguous row partition —
the quantity GP minimises, and the feature that §4.5 finds most
predictive of SpMV performance.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatrixFormatError
from ..matrix.csr import CSRMatrix
from ..util.validate import require
from ._structure import structural


def offdiagonal_nonzeros(a: CSRMatrix, nblocks: int) -> int:
    """Nonzeros outside the ``nblocks`` diagonal blocks.

    Explicitly stored zeros are not counted (they are not nonzeros of
    the mathematical matrix; see :mod:`repro.features._structure`).
    """
    require(nblocks >= 1, MatrixFormatError,
            f"nblocks must be >= 1, got {nblocks}")
    a = structural(a)
    if a.nnz == 0 or nblocks == 1:
        return 0
    # block boundaries mirror the 1D row split (linspace, like OpenMP
    # static); columns use the same boundaries scaled to ncols
    row_bounds = np.linspace(0, a.nrows, nblocks + 1).astype(np.int64)
    col_bounds = np.linspace(0, a.ncols, nblocks + 1).astype(np.int64)
    rows = a.row_of_entry()
    row_blk = np.searchsorted(row_bounds, rows, side="right") - 1
    col_blk = np.searchsorted(col_bounds, a.colidx, side="right") - 1
    return int(np.sum(row_blk != col_blk))
