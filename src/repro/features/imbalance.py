"""Load imbalance factor (paper §3.2).

``max(nonzeros per thread) / mean(nonzeros per thread)`` for a given
schedule: 1.0 means perfectly balanced.  The 2D schedule is balanced by
construction (its factor is ~1.0 up to integer rounding, paper
footnote 1); the 1D schedule's factor is a genuine matrix feature.

The paper defines the factor over the *actual* thread partition, so
threads that own no rows and no entries — which the static splits
produce whenever ``nthreads > nrows`` — are excluded from both the max
and the mean (:meth:`~repro.spmv.schedule.Schedule.active_threads`).
Without the exclusion, empty shares dilute the mean and the factor
grows with the thread count even for perfectly balanced matrices.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..spmv.schedule import Schedule, schedule_1d


def imbalance_factor(schedule: Schedule) -> float:
    """Max-over-mean nonzeros per thread, over *active* threads only.

    Returns 1.0 for degenerate partitions (no active thread, or zero
    nonzeros overall) — a partition with no work is trivially balanced.
    """
    active = schedule.active_threads()
    if not bool(active.any()):
        return 1.0
    per_thread = schedule.nnz_per_thread()[active]
    mean = per_thread.mean()
    if mean == 0:
        return 1.0
    return float(per_thread.max() / mean)


def imbalance_factor_1d(a: CSRMatrix, nthreads: int) -> float:
    """Imbalance of the 1D row split with ``nthreads`` threads."""
    return imbalance_factor(schedule_1d(a, nthreads))
