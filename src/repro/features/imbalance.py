"""Load imbalance factor (paper §3.2).

``max(nonzeros per thread) / mean(nonzeros per thread)`` for a given
schedule: 1.0 means perfectly balanced.  The 2D schedule is balanced by
construction (its factor is ~1.0 up to integer rounding, paper
footnote 1); the 1D schedule's factor is a genuine matrix feature.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..spmv.schedule import Schedule, schedule_1d


def imbalance_factor(schedule: Schedule) -> float:
    """Max-over-mean nonzeros per thread for ``schedule``."""
    per_thread = schedule.nnz_per_thread()
    mean = per_thread.mean()
    if mean == 0:
        return 1.0
    return float(per_thread.max() / mean)


def imbalance_factor_1d(a: CSRMatrix, nthreads: int) -> float:
    """Imbalance of the 1D row split with ``nthreads`` threads."""
    return imbalance_factor(schedule_1d(a, nthreads))
