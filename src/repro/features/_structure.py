"""Canonical structural view of a matrix for feature computation.

The §3.2 structural features (bandwidth, profile, off-diagonal count)
are defined over the *nonzeros* of the matrix — ``a_ij != 0`` — while a
CSR container may also carry explicitly stored zero entries (Matrix
Market files and hand-assembled matrices both produce them).  Before
this module the two computation paths disagreed: features on the CSR
directly counted stored zeros as nonzeros, while a round trip through
dense (``csr_from_dense(a.to_dense())``) silently dropped them.

:func:`structural` makes the CSR path match the dense path: features
are computed on the stored pattern with explicit zeros removed.  The
sortedness half of the precondition (strictly increasing columns within
rows) is enforced at :class:`~repro.matrix.csr.CSRMatrix` construction
via :func:`repro.util.validate.check_sorted_columns`, so a CSR instance
can never reach a feature routine unsorted.
"""

from __future__ import annotations

from ..matrix.csr import CSRMatrix


def structural(a: CSRMatrix) -> CSRMatrix:
    """``a`` without explicitly stored zeros (``a`` itself when clean)."""
    return a.drop_explicit_zeros()
