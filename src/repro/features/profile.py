"""Matrix profile (envelope size), Gibbs et al. (paper §3.2).

``profile(A) = Σ_i  (i − min{ j : a_ij ≠ 0 })``

For rows whose leftmost entry lies right of the diagonal the distance
is clamped at zero (the envelope definition assumes entries up to the
diagonal; a strictly upper-triangular row contributes nothing).  Empty
rows contribute nothing.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ._structure import structural


def profile(a: CSRMatrix) -> int:
    """Sum over rows of the distance from the leftmost entry to the
    diagonal.  Explicitly stored zeros do not widen the envelope."""
    a = structural(a)
    if a.nnz == 0:
        return 0
    lengths = a.row_lengths()
    nonempty = np.flatnonzero(lengths > 0)
    # first entry of each nonempty row is its minimum column (CSR sorted)
    first_cols = a.colidx[a.rowptr[nonempty]]
    dist = np.maximum(nonempty - first_cols, 0)
    return int(dist.sum())
