"""Additional locality metrics (paper §6 future work: "new metrics to
analyze reordering algorithms").

Beyond the four §3.2 features, three metrics with finer locality
resolution, all order-sensitive:

* :func:`mean_column_span` — average over rows of (max col − min col);
  Temam & Jalby's cache-behaviour analysis shows the per-row span
  governs how much of x a row's dot product touches.
* :func:`adjacent_row_overlap` — average Jaccard overlap of the column
  sets of consecutive rows; the quantity the TSP orderings maximise.
* :func:`row_length_entropy` — Shannon entropy (bits) of the row-length
  distribution; low entropy = predictable inner-loop trip counts, the
  branch-prediction effect the Gray ordering targets.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix


def mean_column_span(a: CSRMatrix) -> float:
    """Average per-row distance between first and last nonzero column."""
    if a.nnz == 0:
        return 0.0
    lengths = a.row_lengths()
    nonempty = np.flatnonzero(lengths > 0)
    first = a.colidx[a.rowptr[nonempty]]
    last = a.colidx[a.rowptr[nonempty] + lengths[nonempty] - 1]
    return float((last - first).mean())


def adjacent_row_overlap(a: CSRMatrix, sample: int | None = None,
                         seed=0) -> float:
    """Mean Jaccard similarity of consecutive rows' column sets.

    ``sample`` bounds the number of row pairs examined (uniformly
    sampled) so the metric stays cheap on large matrices.
    """
    if a.nrows < 2 or a.nnz == 0:
        return 0.0
    pairs = np.arange(a.nrows - 1)
    if sample is not None and sample < pairs.size:
        rng = np.random.default_rng(seed)
        pairs = np.sort(rng.choice(pairs, size=sample, replace=False))
    total = 0.0
    counted = 0
    for i in pairs:
        ci, _ = a.row_slice(int(i))
        cj, _ = a.row_slice(int(i) + 1)
        if ci.size == 0 and cj.size == 0:
            continue
        inter = np.intersect1d(ci, cj, assume_unique=True).size
        union = ci.size + cj.size - inter
        total += inter / union
        counted += 1
    return total / counted if counted else 0.0


def row_length_entropy(a: CSRMatrix) -> float:
    """Shannon entropy (bits) of the row-length histogram."""
    lengths = a.row_lengths()
    if lengths.size == 0:
        return 0.0
    counts = np.bincount(lengths)
    p = counts[counts > 0] / lengths.size
    return float(-(p * np.log2(p)).sum())
