"""Matrix bandwidth: ``max |i - j|`` over nonzeros (paper §3.2)."""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ._structure import structural


def bandwidth(a: CSRMatrix) -> int:
    """The largest distance of any nonzero to the main diagonal.

    Zero for empty and diagonal matrices.  Explicitly stored zero
    entries are not nonzeros and do not widen the band (see
    :mod:`repro.features._structure`).
    """
    a = structural(a)
    if a.nnz == 0:
        return 0
    rows = a.row_of_entry()
    return int(np.abs(rows - a.colidx).max())
