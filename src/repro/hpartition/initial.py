"""Initial bisection of the coarsest hypergraph by greedy net growing.

Side 0 is grown from a random seed vertex, absorbing at each step a
vertex adjacent (via a small net) to the current region, preferring
vertices most of whose nets are already inside.  Run from a few seeds;
the lowest cut-net feasible result wins.
"""

from __future__ import annotations

import numpy as np

from ..graph.hypergraph import Hypergraph
from ..util.fastpath import fast_enabled
from ..util.rng import as_rng
from .metrics import cutnet


def greedy_grow_hbisection(h: Hypergraph, target0: int,
                           seed_vertex: int) -> np.ndarray:
    """Grow side 0 from a seed in net-neighbour BFS order."""
    if not fast_enabled():
        return greedy_grow_hbisection_reference(h, target0, seed_vertex)
    n = h.nvertices
    side = [1] * n
    in0 = bytearray(n)
    in_frontier = bytearray(n)
    frontier = [int(seed_vertex)]
    in_frontier[seed_vertex] = 1
    net_ptr = h.net_ptr.tolist()
    net_pins = h.net_pins.tolist()
    vtx_ptr = h.vtx_ptr.tolist()
    vtx_nets = h.vtx_nets.tolist()
    vw_l = h.vwgt.tolist()
    acc = 0
    head = 0
    scan = 0  # unvisited vertices are only ever consumed left to right
    while acc < target0:
        if head >= len(frontier):
            # region exhausted (disconnected): jump to the smallest
            # unvisited vertex (same pick as the reference's flatnonzero)
            while scan < n and (in0[scan] or in_frontier[scan]):
                scan += 1
            if scan == n:
                break
            frontier.append(scan)
            in_frontier[scan] = 1
        v = frontier[head]
        head += 1
        if in0[v]:
            continue
        in0[v] = 1
        side[v] = 0
        acc += vw_l[v]
        for ei in range(vtx_ptr[v], vtx_ptr[v + 1]):
            e = vtx_nets[ei]
            lo, hi = net_ptr[e], net_ptr[e + 1]
            if hi - lo > 256:
                continue
            for pi in range(lo, hi):
                u = net_pins[pi]
                if not in0[u] and not in_frontier[u]:
                    in_frontier[u] = 1
                    frontier.append(u)
    return np.array(side, dtype=np.int64)


def greedy_grow_hbisection_reference(h: Hypergraph, target0: int,
                                     seed_vertex: int) -> np.ndarray:
    """Scalar reference greedy growth (pre-fast-path implementation)."""
    n = h.nvertices
    side = np.ones(n, dtype=np.int64)
    in0 = np.zeros(n, dtype=bool)
    frontier = [int(seed_vertex)]
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[seed_vertex] = True
    acc = 0
    head = 0
    while acc < target0:
        if head >= len(frontier):
            # region exhausted (disconnected): jump to an unvisited vertex
            rest = np.flatnonzero(~in0 & ~in_frontier)
            if rest.size == 0:
                break
            frontier.append(int(rest[0]))
            in_frontier[rest[0]] = True
        v = frontier[head]
        head += 1
        if in0[v]:
            continue
        in0[v] = True
        side[v] = 0
        acc += int(h.vwgt[v])
        for e in h.nets_of(v):
            pins = h.pins(int(e))
            if pins.size > 256:
                continue
            for u in pins:
                u = int(u)
                if not in0[u] and not in_frontier[u]:
                    in_frontier[u] = True
                    frontier.append(u)
    return side


def initial_hbisection(h: Hypergraph, target0: int, rng=None,
                       ntrials: int = 4) -> np.ndarray:
    """Best-of-``ntrials`` greedy bisections by (feasibility, cut-net)."""
    rng = as_rng(rng)
    n = h.nvertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    total = int(h.vwgt.sum())
    candidates = []
    for _ in range(ntrials):
        seed = int(rng.integers(0, n))
        candidates.append(greedy_grow_hbisection(h, target0, seed))

    def score(side):
        w0 = int(h.vwgt[side == 0].sum())
        imbalance = abs(w0 - target0) / max(total, 1)
        return (round(imbalance * 20), cutnet(h, side))

    return min(candidates, key=score)
