"""Initial bisection of the coarsest hypergraph by greedy net growing.

Side 0 is grown from a random seed vertex, absorbing at each step a
vertex adjacent (via a small net) to the current region, preferring
vertices most of whose nets are already inside.  Run from a few seeds;
the lowest cut-net feasible result wins.
"""

from __future__ import annotations

import numpy as np

from ..graph.hypergraph import Hypergraph
from ..util.rng import as_rng
from .metrics import cutnet


def greedy_grow_hbisection(h: Hypergraph, target0: int,
                           seed_vertex: int) -> np.ndarray:
    """Grow side 0 from a seed in net-neighbour BFS order."""
    n = h.nvertices
    side = np.ones(n, dtype=np.int64)
    in0 = np.zeros(n, dtype=bool)
    frontier = [int(seed_vertex)]
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[seed_vertex] = True
    acc = 0
    head = 0
    while acc < target0:
        if head >= len(frontier):
            # region exhausted (disconnected): jump to an unvisited vertex
            rest = np.flatnonzero(~in0 & ~in_frontier)
            if rest.size == 0:
                break
            frontier.append(int(rest[0]))
            in_frontier[rest[0]] = True
        v = frontier[head]
        head += 1
        if in0[v]:
            continue
        in0[v] = True
        side[v] = 0
        acc += int(h.vwgt[v])
        for e in h.nets_of(v):
            pins = h.pins(int(e))
            if pins.size > 256:
                continue
            for u in pins:
                u = int(u)
                if not in0[u] and not in_frontier[u]:
                    in_frontier[u] = True
                    frontier.append(u)
    return side


def initial_hbisection(h: Hypergraph, target0: int, rng=None,
                       ntrials: int = 4) -> np.ndarray:
    """Best-of-``ntrials`` greedy bisections by (feasibility, cut-net)."""
    rng = as_rng(rng)
    n = h.nvertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    total = int(h.vwgt.sum())
    candidates = []
    for _ in range(ntrials):
        seed = int(rng.integers(0, n))
        candidates.append(greedy_grow_hbisection(h, target0, seed))

    def score(side):
        w0 = int(h.vwgt[side == 0].sum())
        imbalance = abs(w0 - target0) / max(total, 1)
        return (round(imbalance * 20), cutnet(h, side))

    return min(candidates, key=score)
