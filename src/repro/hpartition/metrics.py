"""Hypergraph partition metrics.

* **cut-net**: sum of weights of nets with pins in ≥ 2 parts — the
  objective the study's HP ordering minimises.  In the column-net model
  this counts columns whose nonzeros span multiple row blocks.
* **connectivity − 1** (λ−1): sum over nets of (number of parts spanned
  − 1) — PaToH's alternative objective, equal to the communication
  volume of parallel SpMV.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.hypergraph import Hypergraph


def _check(h: Hypergraph, part: np.ndarray) -> np.ndarray:
    part = np.asarray(part, dtype=np.int64)
    if part.shape != (h.nvertices,):
        raise PartitionError(
            f"assignment length {part.size} != nvertices {h.nvertices}")
    return part


def _parts_per_net(h: Hypergraph, part: np.ndarray) -> np.ndarray:
    """Number of distinct parts each net's pins touch (0 for empty nets)."""
    pin_parts = part[h.net_pins]
    net_of_pin = np.repeat(np.arange(h.nnets, dtype=np.int64),
                           h.net_sizes())
    if pin_parts.size == 0:
        return np.zeros(h.nnets, dtype=np.int64)
    order = np.lexsort((pin_parts, net_of_pin))
    ne = net_of_pin[order]
    pp = pin_parts[order]
    first = np.empty(pp.size, dtype=bool)
    first[0] = True
    first[1:] = (ne[1:] != ne[:-1]) | (pp[1:] != pp[:-1])
    counts = np.zeros(h.nnets, dtype=np.int64)
    np.add.at(counts, ne[first], 1)
    return counts


def cutnet(h: Hypergraph, part: np.ndarray) -> int:
    """Weight of nets spanning more than one part."""
    part = _check(h, part)
    spans = _parts_per_net(h, part)
    return int(h.nwgt[spans >= 2].sum())


def connectivity_minus_one(h: Hypergraph, part: np.ndarray) -> int:
    """λ−1 metric: Σ_nets w(e)·(parts spanned − 1)."""
    part = _check(h, part)
    spans = _parts_per_net(h, part)
    lam = np.maximum(spans - 1, 0)
    return int((h.nwgt * lam).sum())


def hyper_balance(h: Hypergraph, part: np.ndarray, nparts: int) -> float:
    """Max part weight over average part weight."""
    part = _check(h, part)
    if part.size and part.max() >= nparts:
        raise PartitionError(
            f"part id {int(part.max())} out of range for nparts={nparts}")
    w = np.zeros(nparts, dtype=np.int64)
    np.add.at(w, part, h.vwgt)
    avg = w.sum() / max(nparts, 1)
    return float(w.max() / avg) if avg else 1.0
