"""Multilevel hypergraph bisection driver."""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.hypergraph import Hypergraph
from ..util.rng import as_rng
from .coarsen import hcoarsen_hierarchy
from .fm import hrefine_or_keep
from .initial import initial_hbisection


def hbisect(h: Hypergraph, target0: int | None = None, tol: float = 0.05,
            rng=None, refine: bool = True,
            min_coarse: int = 64) -> np.ndarray:
    """Bisect hypergraph vertices, minimising cut-net.

    Mirrors :func:`repro.partition.multilevel.bisect`; see there for the
    parameter semantics.
    """
    total = int(h.vwgt.sum())
    if target0 is None:
        target0 = total // 2
    if not (0 <= target0 <= total):
        raise PartitionError(f"target0={target0} outside [0, {total}]")
    rng = as_rng(rng)
    if h.nvertices <= 1:
        return np.zeros(h.nvertices, dtype=np.int64)
    levels = hcoarsen_hierarchy(h, min_vertices=min_coarse, rng=rng)
    side = initial_hbisection(levels[-1].hgraph, target0, rng=rng)
    if refine:
        side = hrefine_or_keep(levels[-1].hgraph, side, target0, tol=tol)
    for level in reversed(levels[:-1]):
        side = side[level.cmap]
        if refine:
            side = hrefine_or_keep(level.hgraph, side, target0, tol=tol)
    return side
