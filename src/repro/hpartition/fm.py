"""Cut-net FM refinement for hypergraph bisections.

Gain of moving vertex v across the bisection, under the cut-net metric:

* a net with all pins on v's side becomes cut → −w(e);
* a cut net where v is the *only* pin on its side becomes uncut → +w(e);
* all other nets are unaffected.

Per-net pin counts on side 0/1 are maintained incrementally, so each
move costs O(Σ_{e∋v} 1) plus gain updates for pins of affected nets.

The fast path runs the move loop on plain Python lists (the reference
spends most of its runtime boxing numpy scalars inside the per-net
threshold updates) with the identical heap discipline: all heap tuples
are distinct, so the pop sequence is a pure function of the pushed
multiset and the seed order is free to differ from the reference's
set-iteration order.  :func:`fm_refine_cutnet` dispatches on
:func:`repro.util.fastpath.fast_enabled`;
:func:`fm_refine_cutnet_reference` is the scalar original.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.hypergraph import Hypergraph
from ..util.fastpath import fast_enabled
from .metrics import cutnet


def _net_side_counts(h: Hypergraph, side: np.ndarray) -> np.ndarray:
    """(nnets, 2) array of pin counts per side."""
    counts = np.zeros((h.nnets, 2), dtype=np.int64)
    net_of_pin = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    np.add.at(counts, (net_of_pin, side[h.net_pins]), 1)
    return counts


def _all_gains(h: Hypergraph, side: np.ndarray,
               counts: np.ndarray) -> np.ndarray:
    """Cut-net gain of every vertex (vectorised over the pin list)."""
    gains = np.zeros(h.nvertices, dtype=np.int64)
    net_of_pin = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    pin_v = h.net_pins
    s = side[pin_v]
    same = counts[net_of_pin, s]
    other = counts[net_of_pin, 1 - s]
    w = h.nwgt[net_of_pin]
    # net uncut (other == 0): moving v cuts it, unless v is the only pin
    makes_cut = (other == 0) & (same > 1)
    # net cut and v sole pin on its side: moving uncuts
    uncuts = (other > 0) & (same == 1)
    np.add.at(gains, pin_v[uncuts], w[uncuts])
    np.subtract.at(gains, pin_v[makes_cut], w[makes_cut])
    return gains


def fm_refine_cutnet(h: Hypergraph, side: np.ndarray, target0: int,
                     tol: float = 0.05, max_passes: int = 2,
                     max_net_update: int = 256) -> np.ndarray:
    """FM passes on the cut-net objective; returns the refined side array.

    Gain updates are skipped for nets with more than ``max_net_update``
    pins: a single move barely changes a huge net's cut state, and the
    stale gains are corrected at the start of the next pass.  This keeps
    a move's cost bounded on matrices with dense columns.
    """
    if not fast_enabled():
        return fm_refine_cutnet_reference(
            h, side, target0, tol=tol, max_passes=max_passes,
            max_net_update=max_net_update)
    side = np.asarray(side, dtype=np.int64).copy()
    n = h.nvertices
    if n == 0:
        return side
    total = int(h.vwgt.sum())
    heaviest = int(h.vwgt.max(initial=1))
    slack = max(int(tol * total), heaviest)
    lo0, hi0 = target0 - slack, target0 + slack

    net_ptr = h.net_ptr.tolist()
    net_pins = h.net_pins.tolist()
    vtx_ptr = h.vtx_ptr.tolist()
    vtx_nets = h.vtx_nets.tolist()
    vw_l = h.vwgt.tolist()
    nw_l = h.nwgt.tolist()
    heappush, heappop = heapq.heappush, heapq.heappop
    stall_limit = 100 + n // 8
    net_of_pin = np.repeat(np.arange(h.nnets, dtype=np.int64),
                           h.net_sizes())
    # heap entries are (-gain, stamp, v) packed into one int:
    # ((-gain)*S + stamp)*n + v.  A vertex u's stamp bumps at most
    # twice per shared net per moved pin, movers lock, so stamp[u]
    # <= 2 * (total pin count) < S — the packed ints compare exactly
    # like the reference's tuples (python floor division keeps the
    # decode exact for negative keys)
    S = 2 * h.net_pins.size + 1
    Sn = S * n

    for _ in range(max_passes):
        counts = _net_side_counts(h, side)
        gain = _all_gains(h, side, counts).tolist()
        w0 = int(h.vwgt[side == 0].sum())
        c0 = counts[:, 0].tolist()
        c1 = counts[:, 1].tolist()
        side_l = side.tolist()
        locked = bytearray(n)
        stamp = [0] * n
        # seed: pins of cut nets (the boundary).  All seed tuples are
        # distinct (vertex id), so the pop order is independent of the
        # push order and np.unique replaces the reference's set walk.
        cut = (counts[:, 0] > 0) & (counts[:, 1] > 0)
        seeds = np.unique(h.net_pins[cut[net_of_pin]])
        heap = [-gain[v] * Sn + v for v in seeds.tolist()]
        heapq.heapify(heap)
        moves = []
        cum = 0
        best_cum = 0
        best_len = 0
        # classic FM hill-climbing bound: give up a pass after this many
        # moves without a new best prefix (full sweeps on graphs where
        # nearly every net is cut waste quadratic time for no gain)
        dev_now = max(w0 - hi0, lo0 - w0, 0)
        while heap:
            if len(moves) - best_len > stall_limit:
                break
            key = heappop(heap)
            v = key % n
            if locked[v] or (key // n) % S != stamp[v]:
                continue
            vw = vw_l[v]
            old = side_l[v]
            new_w0 = w0 - vw if old == 0 else w0 + vw
            dev_new = max(new_w0 - hi0, lo0 - new_w0, 0)
            if dev_new > 0 and dev_new >= dev_now:
                locked[v] = 1
                continue
            side_l[v] = 1 - old
            w0 = new_w0
            dev_now = dev_new
            locked[v] = 1
            cum += gain[v]
            moves.append(v)
            # update counts and apply the classical cut-net delta-gain
            # rules: only nets whose side counts cross the 0/1/2
            # thresholds change any pin's gain
            new = 1 - old
            touched = []
            for ei in range(vtx_ptr[v], vtx_ptr[v + 1]):
                e = vtx_nets[ei]
                if new == 0:
                    c_new_before = c0[e]
                    c0[e] = c_new_before + 1
                    c_old_after = c1[e] - 1
                    c1[e] = c_old_after
                else:
                    c_new_before = c1[e]
                    c1[e] = c_new_before + 1
                    c_old_after = c0[e] - 1
                    c0[e] = c_old_after
                if c_new_before > 1 and c_old_after > 1:
                    continue  # no threshold crossed
                lo_p, hi_p = net_ptr[e], net_ptr[e + 1]
                if hi_p - lo_p > max_net_update:
                    continue
                w = nw_l[e]
                if c_new_before == 0:
                    # net was uncut, now cut: old-side pins stop paying
                    for pi in range(lo_p, hi_p):
                        u = net_pins[pi]
                        if u != v and not locked[u] and side_l[u] == old:
                            gain[u] += w
                            touched.append(u)
                if c_new_before == 1:
                    # formerly sole new-side pin can no longer uncut it
                    for pi in range(lo_p, hi_p):
                        u = net_pins[pi]
                        if u != v and not locked[u] and side_l[u] == new:
                            gain[u] -= w
                            touched.append(u)
                            break
                if c_old_after == 0:
                    # net became uncut on the new side: moving any pin cuts
                    for pi in range(lo_p, hi_p):
                        u = net_pins[pi]
                        if u != v and not locked[u]:
                            gain[u] -= w
                            touched.append(u)
                if c_old_after == 1:
                    # lone old-side pin can now uncut the net
                    for pi in range(lo_p, hi_p):
                        u = net_pins[pi]
                        if u != v and not locked[u] and side_l[u] == old:
                            gain[u] += w
                            touched.append(u)
                            break
            for u in touched:
                su = stamp[u] + 1
                stamp[u] = su
                heappush(heap, (-gain[u] * S + su) * n + u)
            if cum > best_cum and lo0 <= w0 <= hi0:
                best_cum = cum
                best_len = len(moves)
        for v in moves[best_len:]:
            side_l[v] = 1 - side_l[v]
        side = np.array(side_l, dtype=np.int64)
        if best_cum <= 0:
            break
    return side


def fm_refine_cutnet_reference(h: Hypergraph, side: np.ndarray, target0: int,
                               tol: float = 0.05, max_passes: int = 2,
                               max_net_update: int = 256) -> np.ndarray:
    """Scalar reference cut-net FM (pre-vectorisation implementation)."""
    side = np.asarray(side, dtype=np.int64).copy()
    n = h.nvertices
    if n == 0:
        return side
    total = int(h.vwgt.sum())
    heaviest = int(h.vwgt.max(initial=1))
    slack = max(int(tol * total), heaviest)
    lo0, hi0 = target0 - slack, target0 + slack

    for _ in range(max_passes):
        counts = _net_side_counts(h, side)
        gain = _all_gains(h, side, counts)
        w0 = int(h.vwgt[side == 0].sum())
        locked = np.zeros(n, dtype=bool)
        stamp = np.zeros(n, dtype=np.int64)
        heap = []
        # seed: pins of cut nets (the boundary)
        cut_nets = np.flatnonzero((counts[:, 0] > 0) & (counts[:, 1] > 0))
        seeds = set()
        for e in cut_nets:
            for v in h.pins(int(e)):
                seeds.add(int(v))
        for v in seeds:
            heapq.heappush(heap, (-int(gain[v]), 0, v))
        moves = []
        cum = 0
        best_cum = 0
        best_len = 0
        # classic FM hill-climbing bound: give up a pass after this many
        # moves without a new best prefix (full sweeps on graphs where
        # nearly every net is cut waste quadratic time for no gain)
        stall_limit = 100 + n // 8
        while heap:
            if len(moves) - best_len > stall_limit:
                break
            negg, st, v = heapq.heappop(heap)
            if locked[v] or st != stamp[v]:
                continue
            vw = int(h.vwgt[v])
            new_w0 = w0 - vw if side[v] == 0 else w0 + vw
            dev_now = max(w0 - hi0, lo0 - w0, 0)
            dev_new = max(new_w0 - hi0, lo0 - new_w0, 0)
            if dev_new > 0 and dev_new >= dev_now:
                locked[v] = True
                continue
            old = int(side[v])
            side[v] = 1 - old
            w0 = new_w0
            locked[v] = True
            cum += int(gain[v])
            moves.append(v)
            # update counts and apply the classical cut-net delta-gain
            # rules: only nets whose side counts cross the 0/1/2
            # thresholds change any pin's gain
            new = 1 - old
            touched = []
            for e in h.nets_of(v):
                e = int(e)
                c_new_before = int(counts[e, new])
                counts[e, old] -= 1
                counts[e, new] += 1
                c_old_after = int(counts[e, old])
                if (c_new_before > 1 and c_old_after > 1):
                    continue  # no threshold crossed
                pins = h.pins(e)
                if pins.size > max_net_update:
                    continue
                w = int(h.nwgt[e])
                if c_new_before == 0:
                    # net was uncut, now cut: old-side pins stop paying
                    for u in pins:
                        u = int(u)
                        if u != v and not locked[u] and side[u] == old:
                            gain[u] += w
                            touched.append(u)
                if c_new_before == 1:
                    # formerly sole new-side pin can no longer uncut it
                    for u in pins:
                        u = int(u)
                        if u != v and not locked[u] and side[u] == new:
                            gain[u] -= w
                            touched.append(u)
                            break
                if c_old_after == 0:
                    # net became uncut on the new side: moving any pin cuts
                    for u in pins:
                        u = int(u)
                        if u != v and not locked[u]:
                            gain[u] -= w
                            touched.append(u)
                if c_old_after == 1:
                    # lone old-side pin can now uncut the net
                    for u in pins:
                        u = int(u)
                        if u != v and not locked[u] and side[u] == old:
                            gain[u] += w
                            touched.append(u)
                            break
            for u in touched:
                stamp[u] += 1
                heapq.heappush(heap, (-int(gain[u]), int(stamp[u]), u))
            feasible = lo0 <= w0 <= hi0
            if cum > best_cum and feasible:
                best_cum = cum
                best_len = len(moves)
        for v in moves[best_len:]:
            side[v] = 1 - side[v]
        if best_cum <= 0:
            break
    return side


def hrefine_or_keep(h: Hypergraph, side: np.ndarray, target0: int,
                    tol: float = 0.05, max_passes: int = 2) -> np.ndarray:
    """Keep the better of (input, refined) by cut-net."""
    refined = fm_refine_cutnet(h, side, target0, tol=tol,
                               max_passes=max_passes)
    if cutnet(h, refined) <= cutnet(h, side):
        return refined
    return np.asarray(side, dtype=np.int64)
