"""Multilevel hypergraph partitioner — our from-scratch PaToH substitute.

Implements multilevel hypergraph bisection with the **cut-net** metric
used by the paper's HP ordering (§3.3): heavy-connectivity matching for
coarsening, greedy growing for initial partitions, and cut-net FM for
refinement.  k-way partitions come from recursive bisection.

The connectivity (λ−1) metric is also implemented in :mod:`.metrics`
for completeness — PaToH offers both and the paper picks cut-net.
"""

from .metrics import cutnet, connectivity_minus_one, hyper_balance
from .multilevel import hbisect
from .recursive import partition_hypergraph

__all__ = [
    "cutnet",
    "connectivity_minus_one",
    "hyper_balance",
    "hbisect",
    "partition_hypergraph",
]
