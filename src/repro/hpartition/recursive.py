"""Recursive bisection to k-way hypergraph partitions.

After a bisection, each sub-problem keeps the nets restricted to its own
vertices (pins outside are dropped, single-pin nets vanish): a net
already cut by an ancestor bisection is not double-counted, matching
the recursive cut-net formulation PaToH uses.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.hypergraph import Hypergraph
from ..util.rng import as_rng
from .multilevel import hbisect


def induced_subhypergraph(h: Hypergraph, vertices: np.ndarray) -> Hypergraph:
    """Restrict ``h`` to ``vertices``; drops outside pins and tiny nets."""
    vertices = np.asarray(vertices, dtype=np.int64)
    local = np.full(h.nvertices, -1, dtype=np.int64)
    local[vertices] = np.arange(vertices.size, dtype=np.int64)
    net_of_pin = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    lp = local[h.net_pins]
    keep = lp >= 0
    ne, lp = net_of_pin[keep], lp[keep]
    sizes = np.bincount(ne, minlength=h.nnets)
    keep_net = sizes >= 2
    new_id = np.cumsum(keep_net) - 1
    pin_keep = keep_net[ne]
    ne = new_id[ne[pin_keep]]
    lp = lp[pin_keep]
    nnets = int(keep_net.sum())
    order = np.lexsort((lp, ne))
    ne, lp = ne[order], lp[order]
    net_ptr = np.zeros(nnets + 1, dtype=np.int64)
    np.add.at(net_ptr, ne + 1, 1)
    np.cumsum(net_ptr, out=net_ptr)
    vorder = np.lexsort((ne, lp))
    vtx_nets = ne[vorder]
    vtx_ptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.add.at(vtx_ptr, lp + 1, 1)
    np.cumsum(vtx_ptr, out=vtx_ptr)
    return Hypergraph(nvertices=vertices.size, nnets=nnets, net_ptr=net_ptr,
                      net_pins=lp, vtx_ptr=vtx_ptr, vtx_nets=vtx_nets,
                      vwgt=h.vwgt[vertices].copy(),
                      nwgt=h.nwgt[keep_net].copy())


def partition_hypergraph(h: Hypergraph, nparts: int, tol: float = 0.05,
                         rng=None, refine: bool = True) -> np.ndarray:
    """k-way cut-net partition of ``h`` by recursive bisection."""
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    rng = as_rng(rng)
    part = np.zeros(h.nvertices, dtype=np.int64)
    _recurse(h, np.arange(h.nvertices, dtype=np.int64), nparts, 0, part,
             tol, rng, refine)
    return part


def _recurse(h: Hypergraph, global_ids: np.ndarray, nparts: int, base: int,
             part: np.ndarray, tol: float, rng, refine: bool) -> None:
    if nparts == 1 or h.nvertices == 0:
        part[global_ids] = base
        return
    k0 = (nparts + 1) // 2
    k1 = nparts - k0
    total = int(h.vwgt.sum())
    target0 = int(round(total * k0 / nparts))
    side = hbisect(h, target0=target0, tol=tol, rng=rng, refine=refine)
    left = np.flatnonzero(side == 0)
    right = np.flatnonzero(side == 1)
    if left.size == 0 or right.size == 0:
        order = np.argsort(h.vwgt, kind="stable")[::-1]
        half = h.nvertices // 2
        left = order[:half]
        right = order[half:]
    _recurse(induced_subhypergraph(h, left), global_ids[left], k0, base,
             part, tol, rng, refine)
    _recurse(induced_subhypergraph(h, right), global_ids[right], k1,
             base + k0, part, tol, rng, refine)
