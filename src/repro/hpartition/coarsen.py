"""Hypergraph coarsening: heavy-connectivity matching + contraction.

Heavy-connectivity matching pairs each vertex with the unmatched vertex
it shares the most (small-)net weight with.  Very large nets are skipped
during matching — their pins are weakly related and scanning them would
dominate runtime — which is the same pragmatic cutoff PaToH applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.hypergraph import Hypergraph
from ..util.fastpath import fast_enabled
from ..util.rng import as_rng


@dataclass(frozen=True)
class HLevel:
    """One level of the hypergraph hierarchy (cmap=None at coarsest)."""

    hgraph: Hypergraph
    cmap: np.ndarray | None


def heavy_connectivity_matching(h: Hypergraph, rng=None,
                                max_net_size: int = 64) -> np.ndarray:
    """match[v] = partner (or v itself).  O(Σ_v Σ_{e∋v, small} |e|)."""
    if not fast_enabled():
        return heavy_connectivity_matching_reference(
            h, rng=rng, max_net_size=max_net_size)
    rng = as_rng(rng)
    n = h.nvertices
    order = rng.permutation(n).tolist()
    match = [-1] * n
    net_ptr = h.net_ptr.tolist()
    net_pins = h.net_pins.tolist()
    vtx_ptr = h.vtx_ptr.tolist()
    vtx_nets = h.vtx_nets.tolist()
    nw_l = h.nwgt.tolist()
    score = [0] * n  # scratch: shared weight with v
    for v in order:
        if match[v] != -1:
            continue
        touched = []
        for ei in range(vtx_ptr[v], vtx_ptr[v + 1]):
            e = vtx_nets[ei]
            lo, hi = net_ptr[e], net_ptr[e + 1]
            if hi - lo > max_net_size:
                continue
            w = nw_l[e]
            for pi in range(lo, hi):
                u = net_pins[pi]
                if u != v and match[u] == -1:
                    if score[u] == 0:
                        touched.append(u)
                    score[u] += w
        if touched:
            # first maximum wins, matching the reference's max(key=...)
            best = touched[0]
            best_s = score[best]
            for u in touched:
                s = score[u]
                if s > best_s:
                    best_s = s
                    best = u
                score[u] = 0
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return np.array(match, dtype=np.int64)


def heavy_connectivity_matching_reference(
        h: Hypergraph, rng=None, max_net_size: int = 64) -> np.ndarray:
    """Numpy-scalar reference HCM (pre-fast-path implementation)."""
    rng = as_rng(rng)
    n = h.nvertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    net_sizes = h.net_sizes()
    score = np.zeros(n, dtype=np.int64)  # scratch: shared weight with v
    for v in order:
        if match[v] != -1:
            continue
        touched = []
        for e in h.nets_of(int(v)):
            if net_sizes[e] > max_net_size:
                continue
            for u in h.pins(int(e)):
                if u != v and match[u] == -1:
                    if score[u] == 0:
                        touched.append(int(u))
                    score[u] += int(h.nwgt[e])
        if touched:
            best = max(touched, key=lambda u: score[u])
            match[v] = best
            match[best] = v
            for u in touched:
                score[u] = 0
        else:
            match[v] = v
    return match


def hcontract(h: Hypergraph, cmap: np.ndarray, ncoarse: int) -> Hypergraph:
    """Contract the hypergraph: relabel pins, dedup within nets, drop
    single-pin nets."""
    coarse_pins = cmap[h.net_pins]
    net_of_pin = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    order = np.lexsort((coarse_pins, net_of_pin))
    ne = net_of_pin[order]
    cp = coarse_pins[order]
    if cp.size:
        first = np.empty(cp.size, dtype=bool)
        first[0] = True
        first[1:] = (ne[1:] != ne[:-1]) | (cp[1:] != cp[:-1])
        ne, cp = ne[first], cp[first]
    # net sizes after dedup; drop nets with < 2 pins
    sizes = np.bincount(ne, minlength=h.nnets)
    keep_net = sizes >= 2
    new_id = np.cumsum(keep_net) - 1
    pin_keep = keep_net[ne]
    ne = new_id[ne[pin_keep]]
    cp = cp[pin_keep]
    nnets = int(keep_net.sum())
    net_ptr = np.zeros(nnets + 1, dtype=np.int64)
    np.add.at(net_ptr, ne + 1, 1)
    np.cumsum(net_ptr, out=net_ptr)
    # vertex view: transpose the (net, pin) incidence
    vorder = np.lexsort((ne, cp))
    vtx_nets = ne[vorder]
    vtx_ptr = np.zeros(ncoarse + 1, dtype=np.int64)
    np.add.at(vtx_ptr, cp + 1, 1)
    np.cumsum(vtx_ptr, out=vtx_ptr)
    vwgt = np.zeros(ncoarse, dtype=np.int64)
    np.add.at(vwgt, cmap, h.vwgt)
    return Hypergraph(nvertices=ncoarse, nnets=nnets, net_ptr=net_ptr,
                      net_pins=cp, vtx_ptr=vtx_ptr, vtx_nets=vtx_nets,
                      vwgt=vwgt, nwgt=h.nwgt[keep_net].copy())


def hcoarsen_hierarchy(h: Hypergraph, min_vertices: int = 64,
                       max_levels: int = 40, rng=None) -> list:
    """Build [finest, ..., coarsest] hierarchy of :class:`HLevel`."""
    levels = []
    current = h
    for _ in range(max_levels):
        if current.nvertices <= min_vertices:
            break
        match = heavy_connectivity_matching(current, rng=rng)
        # reuse the graph-side map builder (identical semantics)
        from ..partition.matching import matching_to_coarse_map

        cmap, ncoarse = matching_to_coarse_map(match)
        if ncoarse > 0.95 * current.nvertices:
            break
        coarse = hcontract(current, cmap, ncoarse)
        levels.append(HLevel(hgraph=current, cmap=cmap))
        current = coarse
    levels.append(HLevel(hgraph=current, cmap=None))
    return levels
