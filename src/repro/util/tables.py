"""Plain-text table rendering for benchmark reports.

The paper's artifact ships results as plain-text tables consumed by
gnuplot; we do the same.  No plotting dependency is used — boxplots are
rendered as five-number-summary rows plus a coarse ASCII glyph, which is
enough to read off medians and quartiles (the quantities the paper's
figures are interpreted through).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _ascii_box(lo: float, q1: float, med: float, q3: float, hi: float,
               lower: float, upper: float, width: int = 40) -> str:
    """Draw one boxplot row on a fixed ``[lower, upper]`` axis."""
    span = upper - lower
    if span <= 0:
        return " " * width
    def pos(v: float) -> int:
        frac = (min(max(v, lower), upper) - lower) / span
        return min(width - 1, max(0, int(round(frac * (width - 1)))))
    cells = [" "] * width
    for i in range(pos(lo), pos(hi) + 1):
        cells[i] = "-"
    for i in range(pos(q1), pos(q3) + 1):
        cells[i] = "="
    cells[pos(med)] = "|"
    return "".join(cells)


def format_boxplot_rows(
    labels: Sequence[str],
    summaries: Sequence[Sequence[float]],
    lower: float,
    upper: float,
    width: int = 40,
) -> str:
    """Render labelled five-number summaries (whisker-lo, q1, median, q3,
    whisker-hi) as ASCII boxplots on a shared axis ``[lower, upper]``."""
    if len(labels) != len(summaries):
        raise ValueError("labels and summaries must have equal length")
    label_w = max((len(s) for s in labels), default=0)
    lines = []
    for label, s in zip(labels, summaries):
        lo, q1, med, q3, hi = s
        box = _ascii_box(lo, q1, med, q3, hi, lower, upper, width)
        lines.append(
            f"{label.ljust(label_w)} [{box}] "
            f"lo={lo:.2f} q1={q1:.2f} med={med:.2f} q3={q3:.2f} hi={hi:.2f}"
        )
    axis = f"{'':{label_w}}  {lower:<{width // 2}.2f}{upper:>{width // 2}.2f}"
    return "\n".join(lines + [axis])
