"""Wall-clock timing helpers used to measure reordering overhead (Table 5).

The paper reports *serial* reordering times; we measure our own (also
serial) implementations the same way.  ``perf_counter`` is used because
reorderings run from milliseconds to minutes and we only need relative
comparisons between algorithms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = field(default=0.0)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(fn, *args, repeats: int = 1, **kwargs):
    """Call ``fn(*args, **kwargs)`` ``repeats`` times.

    Returns ``(result, best_seconds)`` where ``result`` is the value of
    the final call and ``best_seconds`` the minimum wall time observed —
    matching the paper's use of best-of-N to suppress timing noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best
