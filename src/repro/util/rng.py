"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.
Normalising through :func:`as_rng` keeps every generator reproducible
from a single integer while still allowing callers to thread one
generator through a pipeline.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` creates a fresh nondeterministic generator; an ``int`` seeds
    a PCG64 generator; an existing generator is passed through unchanged
    (not copied), so repeated draws advance the caller's stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators.

    Used by the corpus builder so that every generated matrix has its own
    stream: inserting or removing one matrix from the corpus does not
    perturb the structure of the others.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
