"""Small shared utilities: RNG normalisation, timers, validation, tables.

These helpers are deliberately dependency-free (numpy only) and are used
across every subsystem, so they live at the bottom of the import graph.
"""

from .rng import as_rng, spawn_rng
from .timing import Timer, time_call
from .validate import (
    check_index_array,
    check_positive,
    check_square,
    require,
)
from .tables import format_table, format_boxplot_rows

__all__ = [
    "as_rng",
    "spawn_rng",
    "Timer",
    "time_call",
    "check_index_array",
    "check_positive",
    "check_square",
    "require",
    "format_table",
    "format_boxplot_rows",
]
