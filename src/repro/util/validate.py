"""Input-validation helpers.

These raise :class:`repro.errors.ReproError` subtypes with messages that
name the offending argument, so failures at the public API surface are
self-explanatory.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatrixFormatError, ReproError


def require(condition: bool, exc_type, message: str) -> None:
    """Raise ``exc_type(message)`` unless ``condition`` holds.

    ``exc_type`` must derive from :class:`ReproError` — this keeps the
    promise that the library only raises its own exception hierarchy for
    anticipated misuse.
    """
    if not issubclass(exc_type, ReproError):
        raise TypeError("require() only raises ReproError subclasses")
    if not condition:
        raise exc_type(message)


def check_positive(name: str, value, exc_type=MatrixFormatError):
    """Validate that a scalar parameter is strictly positive."""
    require(value > 0, exc_type, f"{name} must be positive, got {value!r}")
    return value


def check_square(nrows: int, ncols: int, exc_type=MatrixFormatError) -> None:
    """Validate that a matrix is square (required by symmetric orderings)."""
    require(
        nrows == ncols,
        exc_type,
        f"matrix must be square, got {nrows} x {ncols}",
    )


def check_sorted_columns(rowptr: np.ndarray, colidx: np.ndarray,
                         exc_type=MatrixFormatError) -> None:
    """Validate the canonical-CSR column precondition.

    Every feature routine (``bandwidth``, ``profile``, ``offdiag``),
    every SpMV kernel and the reuse-statistics layer assume that within
    each row the column indices are **strictly increasing** — sorted
    and duplicate-free.  :class:`repro.matrix.csr.CSRMatrix` enforces
    this at construction through this validator, so CSR instances are
    canonical by the time they reach any consumer; code that assembles
    raw ``(rowptr, colidx)`` arrays outside the constructor (IO
    readers, converters) can call it directly.

    ``rowptr`` must already satisfy the monotonicity invariants
    (``rowptr[0] == 0``, non-decreasing); only the column ordering is
    checked here.  Raises ``exc_type`` on the first violation.
    """
    rowptr = np.asarray(rowptr, dtype=np.int64)
    colidx = np.asarray(colidx)
    nnz = colidx.size
    if nnz < 2:
        return
    # Vectorised: adjacent colidx must strictly increase except across
    # row boundaries.
    increasing = colidx[1:] > colidx[:-1]
    boundary = np.zeros(nnz, dtype=bool)
    # first entry of rows 1..nrows-1; starts equal to nnz belong to an
    # empty trailing region and mark no real entry
    starts = rowptr[1:-1]
    boundary[starts[starts < nnz]] = True
    same_row = ~boundary[1:]
    require(bool(np.all(increasing | ~same_row)), exc_type,
            "column indices must be strictly increasing within rows "
            "(sorted, duplicate-free) — canonicalize through "
            "repro.matrix.build.csr_from_coo")


def check_index_array(name: str, arr: np.ndarray, upper: int) -> np.ndarray:
    """Validate an integer index array with entries in ``[0, upper)``.

    Returns the array converted to ``int64`` (the library's canonical
    index dtype; the paper stores column offsets as 32-bit but our
    corpus sizes never overflow either way and int64 avoids silent
    wraparound in intermediate arithmetic).
    """
    arr = np.asarray(arr)
    require(
        np.issubdtype(arr.dtype, np.integer),
        MatrixFormatError,
        f"{name} must be an integer array, got dtype {arr.dtype}",
    )
    if arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        require(
            lo >= 0 and hi < upper,
            MatrixFormatError,
            f"{name} entries must lie in [0, {upper}), got range [{lo}, {hi}]",
        )
    return arr.astype(np.int64, copy=False)
