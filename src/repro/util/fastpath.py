"""Global switch between the vectorised fast paths and the scalar
reference implementations of the reordering hot loops.

Every dual-implementation function (BFS levels, RCM, AMD, Gray, the FM
refinements, the matchings) dispatches on :func:`fast_enabled` at call
time.  The flag defaults to on; :func:`reference_mode` flips it off for
the duration of a ``with`` block so the pre-vectorisation scalar code
runs end to end — that is what the ``*_reference`` entry points and the
golden-equivalence harness use for differential testing.

The switch is deliberately process-global (not thread-local): the
reference mode exists for tests and benchmarks, which run the two paths
sequentially in one thread.
"""

from __future__ import annotations

import contextlib

_ENABLED = True


def fast_enabled() -> bool:
    """True when the vectorised fast paths are active."""
    return _ENABLED


def set_fastpath(on: bool) -> bool:
    """Set the global fast-path flag; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


@contextlib.contextmanager
def reference_mode():
    """Run the enclosed block on the scalar reference implementations.

    Re-entrant: nested uses restore the flag they found.
    """
    previous = set_fastpath(False)
    try:
        yield
    finally:
        set_fastpath(previous)
