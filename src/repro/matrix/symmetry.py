"""Pattern symmetry detection and symmetrisation.

The RCM, AMD, ND and GP orderings assume a structurally symmetric
matrix; following the paper (§3.3) an unsymmetric pattern is replaced by
the symmetrisation ``A + Aᵀ`` *of the pattern* before computing those
orderings.  The numeric values are irrelevant for ordering, so the
symmetrised matrix carries pattern values (1.0 where either A or Aᵀ has
an entry).
"""

from __future__ import annotations

import numpy as np

from .build import coo_from_arrays, csr_from_coo
from .csr import CSRMatrix


def is_pattern_symmetric(a: CSRMatrix) -> bool:
    """True iff the sparsity pattern of ``a`` equals that of ``aᵀ``.

    Implemented by canonically sorting the (row, col) and (col, row) key
    sets and comparing — O(nnz log nnz), no transpose materialisation.
    """
    if not a.is_square:
        return False
    rows = a.row_of_entry()
    fwd = np.lexsort((a.colidx, rows))
    bwd = np.lexsort((rows, a.colidx))
    return bool(
        np.array_equal(rows[fwd], a.colidx[bwd])
        and np.array_equal(a.colidx[fwd], rows[bwd])
    )


def symmetrize_pattern(a: CSRMatrix) -> CSRMatrix:
    """Return the pattern of ``A + Aᵀ`` as a CSR matrix with unit values.

    Works for any square matrix; if ``a`` is already pattern-symmetric
    the result has the same pattern (values reset to 1).  Diagonal
    entries are preserved as-is (they are self-loops in graph terms and
    are ignored by the graph constructions that consume this).
    """
    if not a.is_square:
        raise ValueError("symmetrisation requires a square matrix")
    rows = a.row_of_entry()
    both_rows = np.concatenate([rows, a.colidx])
    both_cols = np.concatenate([a.colidx, rows])
    coo = coo_from_arrays(a.nrows, a.ncols, both_rows, both_cols)
    sym = csr_from_coo(coo)
    # duplicate summation may have produced values of 2.0; reset to pattern
    return sym.pattern_only()
