"""The tall-and-skinny dense reference matrix of paper §4.2.

The paper calibrates achievable SpMV throughput with a dense 96000×4000
matrix stored in CSR: the input vector fits in cache, matrix data
streams from memory, and the measured 317 GB/s on Milan B is ~77 % of
peak bandwidth.  We reproduce this calibration point with the same
construction (scaled by a user-chosen factor so the pure-Python pipeline
stays fast).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeneratorError
from ..util.rng import as_rng
from .csr import CSRMatrix

PAPER_ROWS = 96_000
PAPER_COLS = 4_000


def tall_skinny_dense_csr(nrows: int = PAPER_ROWS, ncols: int = PAPER_COLS,
                          seed=0) -> CSRMatrix:
    """A fully dense ``nrows``×``ncols`` matrix stored in CSR format."""
    if nrows <= 0 or ncols <= 0:
        raise GeneratorError(
            f"dense reference needs positive dims, got {nrows}x{ncols}")
    rng = as_rng(seed)
    rowptr = np.arange(nrows + 1, dtype=np.int64) * ncols
    colidx = np.tile(np.arange(ncols, dtype=np.int64), nrows)
    values = rng.standard_normal(nrows * ncols)
    return CSRMatrix(nrows, ncols, rowptr, colidx, values)
