"""Coordinate-format (COO) sparse matrix container.

COO is the construction format: generators and the Matrix Market reader
emit (row, col, value) triplets, which are then compressed to CSR for
every computation.  The container is immutable after construction; all
mutation-style operations return new objects so that a corpus of
matrices can be shared safely between experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MatrixFormatError
from ..util.validate import check_index_array, require


@dataclass(frozen=True)
class COOMatrix:
    """A sparse matrix as parallel (row, col, value) triplet arrays.

    Duplicate (row, col) pairs are permitted in COO form; they are summed
    when converting to CSR, matching the Matrix Market convention.

    Attributes
    ----------
    nrows, ncols:
        Matrix dimensions.
    row, col:
        ``int64`` arrays of length nnz with the coordinates of each entry.
    values:
        ``float64`` array of length nnz with the entry values.
    """

    nrows: int
    ncols: int
    row: np.ndarray
    col: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        require(self.nrows >= 0 and self.ncols >= 0, MatrixFormatError,
                f"negative dimensions {self.nrows} x {self.ncols}")
        row = check_index_array("row", self.row, max(self.nrows, 1))
        col = check_index_array("col", self.col, max(self.ncols, 1))
        values = np.asarray(self.values, dtype=np.float64)
        require(row.shape == col.shape == values.shape, MatrixFormatError,
                "row, col and values must have identical shapes")
        require(row.ndim == 1, MatrixFormatError, "triplet arrays must be 1-D")
        if self.nrows == 0 or self.ncols == 0:
            require(row.size == 0, MatrixFormatError,
                    "empty matrix cannot hold nonzeros")
        # dataclass is frozen; bypass to store normalised arrays.
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "values", values)

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted individually)."""
        return int(self.row.size)

    @property
    def shape(self) -> tuple:
        return (self.nrows, self.ncols)

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swap row and column coordinates)."""
        return COOMatrix(self.ncols, self.nrows, self.col.copy(),
                         self.row.copy(), self.values.copy())

    def with_values(self, values: np.ndarray) -> "COOMatrix":
        """Return a copy with the same pattern but new ``values``."""
        return COOMatrix(self.nrows, self.ncols, self.row, self.col, values)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (testing/small matrices only)."""
        dense = np.zeros((self.nrows, self.ncols))
        np.add.at(dense, (self.row, self.col), self.values)
        return dense

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix({self.nrows}x{self.ncols}, nnz={self.nnz})"
