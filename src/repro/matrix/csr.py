"""Compressed sparse row (CSR) matrix container.

This is the canonical computation format of the study (paper §3.1): all
SpMV kernels, matrix features and the performance model consume CSR.
The container enforces the invariants the rest of the library relies on:

* ``rowptr`` is monotone with ``rowptr[0] == 0`` and
  ``rowptr[nrows] == nnz``;
* within each row, column indices are strictly increasing (sorted and
  deduplicated).

Construction therefore goes through :func:`repro.matrix.build.csr_from_coo`,
which sorts and sums duplicates; the constructor itself only verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MatrixFormatError
from ..util.validate import check_index_array, check_sorted_columns, require


@dataclass(frozen=True)
class CSRMatrix:
    """Sparse matrix in CSR form with sorted, unique columns per row.

    Attributes
    ----------
    nrows, ncols:
        Matrix dimensions.
    rowptr:
        ``int64`` array of length ``nrows + 1``; row ``i`` occupies the
        half-open slice ``[rowptr[i], rowptr[i+1])`` of ``colidx`` and
        ``values``.
    colidx:
        ``int64`` array of length nnz with column indices.
    values:
        ``float64`` array of length nnz with entry values.
    """

    nrows: int
    ncols: int
    rowptr: np.ndarray
    colidx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        require(self.nrows >= 0 and self.ncols >= 0, MatrixFormatError,
                f"negative dimensions {self.nrows} x {self.ncols}")
        rowptr = np.asarray(self.rowptr)
        require(np.issubdtype(rowptr.dtype, np.integer), MatrixFormatError,
                f"rowptr must be integer, got {rowptr.dtype}")
        rowptr = rowptr.astype(np.int64, copy=False)
        require(rowptr.shape == (self.nrows + 1,), MatrixFormatError,
                f"rowptr must have length nrows+1={self.nrows + 1}, "
                f"got {rowptr.shape}")
        require(rowptr[0] == 0, MatrixFormatError, "rowptr[0] must be 0")
        require(bool(np.all(np.diff(rowptr) >= 0)), MatrixFormatError,
                "rowptr must be non-decreasing")
        nnz = int(rowptr[-1])
        colidx = check_index_array("colidx", self.colidx, max(self.ncols, 1))
        require(colidx.shape == (nnz,), MatrixFormatError,
                f"colidx length {colidx.shape} does not match rowptr[-1]={nnz}")
        values = np.asarray(self.values, dtype=np.float64)
        require(values.shape == (nnz,), MatrixFormatError,
                f"values length {values.shape} does not match nnz={nnz}")
        check_sorted_columns(rowptr, colidx)
        object.__setattr__(self, "rowptr", rowptr)
        object.__setattr__(self, "colidx", colidx)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.rowptr[-1])

    @property
    def shape(self) -> tuple:
        return (self.nrows, self.ncols)

    @property
    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def row_lengths(self) -> np.ndarray:
        """Number of nonzeros in every row (length ``nrows``)."""
        return np.diff(self.rowptr)

    def row_of_entry(self) -> np.ndarray:
        """Row index of every stored entry, in CSR order (length nnz).

        Memoised on first call (every SpMV kernel and the performance
        model derive it from the same immutable ``rowptr``); the cached
        array is marked read-only so shared use stays safe.
        """
        cached = getattr(self, "_cache_row_of_entry", None)
        if cached is None:
            cached = np.repeat(np.arange(self.nrows, dtype=np.int64),
                               self.row_lengths())
            cached.flags.writeable = False
            object.__setattr__(self, "_cache_row_of_entry", cached)
        return cached

    def __getstate__(self) -> dict:
        """Drop memoised derivatives (``_cache_*``: row-of-entry,
        schedules, reuse statistics) so pickling a matrix — e.g. for
        sweep-engine worker fan-out — ships only the defining arrays."""
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_cache_")}

    def row_slice(self, i: int) -> tuple:
        """Return ``(cols, vals)`` views for row ``i``."""
        lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
        return self.colidx[lo:hi], self.values[lo:hi]

    # ------------------------------------------------------------------
    # conversions and arithmetic used throughout the library
    # ------------------------------------------------------------------
    def to_coo(self):
        """Convert to :class:`~repro.matrix.coo.COOMatrix`."""
        from .coo import COOMatrix

        return COOMatrix(self.nrows, self.ncols, self.row_of_entry(),
                         self.colidx.copy(), self.values.copy())

    def to_dense(self) -> np.ndarray:
        """Materialise as dense (testing/small matrices only)."""
        dense = np.zeros((self.nrows, self.ncols))
        dense[self.row_of_entry(), self.colidx] = self.values
        return dense

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (used as test oracle)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values.copy(), self.colidx.copy(), self.rowptr.copy()),
            shape=self.shape,
        )

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix (O(nnz) counting sort)."""
        from .build import csr_from_coo

        coo = self.to_coo()
        return csr_from_coo(coo.transpose())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference sequential SpMV ``y = A @ x`` (vectorised numpy).

        The *measured* kernels live in :mod:`repro.spmv`; this method is
        the semantic definition they are tested against (alongside scipy).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise MatrixFormatError(
                f"x has shape {x.shape}, expected ({self.ncols},)")
        products = self.values * x[self.colidx]
        y = np.zeros(self.nrows)
        np.add.at(y, self.row_of_entry(), products)
        return y

    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (zeros where absent)."""
        n = min(self.nrows, self.ncols)
        diag = np.zeros(n)
        rows = self.row_of_entry()
        mask = (rows == self.colidx) & (rows < n)
        diag[rows[mask]] = self.values[mask]
        return diag

    def has_explicit_zeros(self) -> bool:
        """True iff any *stored* entry has the value 0.0.

        Matrix Market files (and hand-built matrices) may store zeros
        explicitly; they occupy CSR slots and are processed by the SpMV
        kernels, but they are not nonzeros of the mathematical matrix —
        the structural features (:mod:`repro.features`) ignore them.
        """
        return bool(np.any(self.values == 0.0))

    def drop_explicit_zeros(self) -> "CSRMatrix":
        """Return a copy without explicitly stored zero entries.

        The sorted-columns invariant is preserved (dropping entries
        never reorders the survivors), so this is a cheap O(nnz) mask —
        no COO round trip.  Returns ``self`` unchanged when there is
        nothing to drop.
        """
        keep = self.values != 0.0
        if bool(keep.all()):
            return self
        kept_per_row = np.zeros(self.nrows, dtype=np.int64)
        np.add.at(kept_per_row, self.row_of_entry()[~keep], -1)
        kept_per_row += self.row_lengths()
        rowptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(kept_per_row, out=rowptr[1:])
        return CSRMatrix(self.nrows, self.ncols, rowptr,
                         self.colidx[keep], self.values[keep])

    def pattern_only(self) -> "CSRMatrix":
        """Return a copy whose values are all 1.0 (structure analyses)."""
        return CSRMatrix(self.nrows, self.ncols, self.rowptr.copy(),
                         self.colidx.copy(), np.ones(self.nnz))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix({self.nrows}x{self.ncols}, nnz={self.nnz})"
