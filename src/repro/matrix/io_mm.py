"""Matrix Market (.mtx) reader and writer.

The SuiteSparse collection and the paper's artifact distribute matrices
in Matrix Market exchange format, so the library speaks it natively.
Supported: ``matrix coordinate real|integer|pattern`` with
``general|symmetric|skew-symmetric`` storage.  Complex matrices are
rejected — the paper's corpus explicitly excludes them (§4.1).

Symmetric storage is expanded on read exactly as the paper describes:
every off-diagonal entry contributes a nonzero in both triangles.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import MatrixFormatError
from .build import coo_from_arrays, csr_from_coo
from .csr import CSRMatrix

_VALID_FIELDS = {"real", "integer", "pattern"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source) -> CSRMatrix:
    """Read a Matrix Market file (path, str content, or text file object).

    Returns the matrix in CSR form with symmetric storage expanded.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        with open(source, "rt") as f:
            return _read(f)
    if isinstance(source, str):
        return _read(io.StringIO(source))
    return _read(source)


def _read(f) -> CSRMatrix:
    header = f.readline().strip().split()
    if len(header) != 5 or header[0] != "%%MatrixMarket":
        raise MatrixFormatError(f"bad Matrix Market banner: {header}")
    _, obj, fmt, field, symmetry = (h.lower() for h in header)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixFormatError(
            f"only 'matrix coordinate' supported, got '{obj} {fmt}'")
    if field not in _VALID_FIELDS:
        raise MatrixFormatError(
            f"unsupported field '{field}' (complex matrices are excluded)")
    if symmetry not in _VALID_SYMMETRIES:
        raise MatrixFormatError(f"unsupported symmetry '{symmetry}'")

    line = f.readline()
    while line.startswith("%"):
        line = f.readline()
    dims = line.split()
    if len(dims) != 3:
        raise MatrixFormatError(f"bad size line: {line!r}")
    nrows, ncols, nnz = (int(d) for d in dims)

    ncols_per_line = 2 if field == "pattern" else 3
    data = np.loadtxt(f, ndmin=2) if nnz else np.empty((0, ncols_per_line))
    if data.shape[0] != nnz:
        raise MatrixFormatError(
            f"expected {nnz} entries, file holds {data.shape[0]}")
    if nnz and data.shape[1] != ncols_per_line:
        raise MatrixFormatError(
            f"expected {ncols_per_line} columns per entry for field "
            f"'{field}', got {data.shape[1]}")
    row = data[:, 0].astype(np.int64) - 1  # 1-based on disk
    col = data[:, 1].astype(np.int64) - 1
    vals = np.ones(nnz) if field == "pattern" else data[:, 2].astype(np.float64)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = row != col
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        row = np.concatenate([row, col[off]])
        col = np.concatenate([col, data[:, 0].astype(np.int64)[off] - 1])
        vals = np.concatenate([vals, sign * vals[off]])

    return csr_from_coo(coo_from_arrays(nrows, ncols, row, col, vals))


def write_matrix_market(a: CSRMatrix, target) -> None:
    """Write ``a`` in 'matrix coordinate real general' format.

    ``target`` may be a path or a writable text file object.  Symmetric
    compression is not applied on write — general storage round-trips
    every matrix exactly, which is what the test suite relies on.
    """
    if isinstance(target, (str, Path)):
        with open(target, "wt") as f:
            _write(a, f)
    else:
        _write(a, target)


def _write(a: CSRMatrix, f) -> None:
    f.write("%%MatrixMarket matrix coordinate real general\n")
    f.write(f"% written by repro\n{a.nrows} {a.ncols} {a.nnz}\n")
    rows = a.row_of_entry()
    for r, c, v in zip(rows, a.colidx, a.values):
        f.write(f"{r + 1} {c + 1} {v:.17g}\n")
