"""Applying permutations to sparse matrices.

Terminology matches :mod:`repro.reorder.perm`: a permutation ``p`` is an
array where ``p[k]`` is the *original* index of the row placed at
position ``k`` in the reordered matrix ("new-to-old" convention, the one
used by scipy and SuiteSparse).  Symmetric permutation applies ``p`` to
both rows and columns (PAPᵀ); row permutation applies it to rows only
(PA), which is what the Gray ordering produces (paper §3.3).
"""

from __future__ import annotations

import numpy as np

from ..errors import PermutationError
from .build import coo_from_arrays, csr_from_coo
from .csr import CSRMatrix


def _check_perm(p: np.ndarray, n: int) -> np.ndarray:
    p = np.asarray(p, dtype=np.int64)
    if p.shape != (n,):
        raise PermutationError(f"permutation has length {p.size}, expected {n}")
    seen = np.zeros(n, dtype=bool)
    if p.size and (p.min() < 0 or p.max() >= n):
        raise PermutationError("permutation entries out of range")
    seen[p] = True
    if not bool(seen.all()):
        raise PermutationError("permutation is not a bijection")
    return p


def invert_permutation(p: np.ndarray) -> np.ndarray:
    """Return the inverse permutation (old-to-new from new-to-old)."""
    p = np.asarray(p, dtype=np.int64)
    inv = np.empty_like(p)
    inv[p] = np.arange(p.size, dtype=np.int64)
    return inv


def permute_rows(a: CSRMatrix, row_perm: np.ndarray) -> CSRMatrix:
    """Return ``PA``: row ``row_perm[k]`` of ``a`` becomes row ``k``.

    This is cheap in CSR — gather the row slices in the new order.
    """
    p = _check_perm(row_perm, a.nrows)
    lengths = a.row_lengths()[p]
    rowptr = np.zeros(a.nrows + 1, dtype=np.int64)
    np.cumsum(lengths, out=rowptr[1:])
    # gather entry indices for each new row, vectorised via repeat/arange
    starts = a.rowptr[p]
    # entry j of new row k comes from position starts[k] + j
    offsets = np.arange(a.nnz, dtype=np.int64) - np.repeat(rowptr[:-1], lengths)
    src = np.repeat(starts, lengths) + offsets
    return CSRMatrix(a.nrows, a.ncols, rowptr, a.colidx[src], a.values[src])


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Return ``PAPᵀ`` for square ``a`` (rows and columns both permuted).

    Column relabelling breaks the sorted-columns invariant, so the result
    is rebuilt through the COO path (O(nnz log nnz)).
    """
    if not a.is_square:
        raise PermutationError("symmetric permutation requires a square matrix")
    p = _check_perm(perm, a.nrows)
    inv = invert_permutation(p)
    rows = inv[a.row_of_entry()]
    cols = inv[a.colidx]
    coo = coo_from_arrays(a.nrows, a.ncols, rows, cols, a.values)
    return csr_from_coo(coo)


def permute_csr(a: CSRMatrix, row_perm: np.ndarray,
                col_perm: np.ndarray) -> CSRMatrix:
    """General two-sided permutation with independent row/column orders."""
    rp = _check_perm(row_perm, a.nrows)
    cp = _check_perm(col_perm, a.ncols)
    inv_r = invert_permutation(rp)
    inv_c = invert_permutation(cp)
    rows = inv_r[a.row_of_entry()]
    cols = inv_c[a.colidx]
    coo = coo_from_arrays(a.nrows, a.ncols, rows, cols, a.values)
    return csr_from_coo(coo)
