"""Sparse-matrix substrate.

The paper's experiments all operate on matrices stored in compressed
sparse row (CSR) format.  This subpackage provides our own COO and CSR
containers built directly on numpy arrays (rather than reusing
``scipy.sparse``), because the reordering algorithms, SpMV schedules and
the performance model need direct access to the raw ``rowptr`` /
``colidx`` / ``values`` arrays with guaranteed invariants (sorted,
deduplicated column indices per row).  scipy is used only in tests as an
independent reference.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .build import coo_from_arrays, csr_from_coo, csr_from_dense, csr_identity
from .symmetry import is_pattern_symmetric, symmetrize_pattern
from .permute import permute_symmetric, permute_rows, permute_csr
from .io_mm import read_matrix_market, write_matrix_market
from .dense import tall_skinny_dense_csr

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "coo_from_arrays",
    "csr_from_coo",
    "csr_from_dense",
    "csr_identity",
    "is_pattern_symmetric",
    "symmetrize_pattern",
    "permute_symmetric",
    "permute_rows",
    "permute_csr",
    "read_matrix_market",
    "write_matrix_market",
    "tall_skinny_dense_csr",
]
