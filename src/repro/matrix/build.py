"""Constructors that establish the CSR invariants.

All paths into :class:`~repro.matrix.csr.CSRMatrix` go through
:func:`csr_from_coo`, which sorts entries by (row, col) and sums
duplicates — the same normalisation the paper's pipeline performs when
converting Matrix Market files to CSR (§4.1).
"""

from __future__ import annotations

import numpy as np

from ..errors import MatrixFormatError
from ..util.validate import require
from .coo import COOMatrix
from .csr import CSRMatrix


def coo_from_arrays(nrows: int, ncols: int, row, col, values=None) -> COOMatrix:
    """Build a :class:`COOMatrix` from array-likes.

    ``values=None`` produces an all-ones pattern matrix, which is how
    graph generators emit adjacency structures.
    """
    row = np.asarray(row, dtype=np.int64)
    col = np.asarray(col, dtype=np.int64)
    if values is None:
        values = np.ones(row.size)
    return COOMatrix(nrows, ncols, row, col, np.asarray(values, dtype=np.float64))


def csr_from_coo(coo: COOMatrix, sum_duplicates: bool = True) -> CSRMatrix:
    """Compress a COO matrix to CSR, sorting and summing duplicates.

    The sort is a single ``np.lexsort`` over (col, row) pairs — O(nnz log
    nnz) — followed by vectorised duplicate reduction with
    ``np.add.reduceat``, so no Python-level loop touches the nonzeros.
    """
    if coo.nnz == 0:
        return CSRMatrix(coo.nrows, coo.ncols,
                         np.zeros(coo.nrows + 1, dtype=np.int64),
                         np.empty(0, dtype=np.int64), np.empty(0))
    order = np.lexsort((coo.col, coo.row))
    row = coo.row[order]
    col = coo.col[order]
    vals = coo.values[order]
    # collapse duplicates: first occurrence of each (row, col) pair
    is_first = np.empty(row.size, dtype=bool)
    is_first[0] = True
    is_first[1:] = (row[1:] != row[:-1]) | (col[1:] != col[:-1])
    if not sum_duplicates and not bool(np.all(is_first)):
        raise MatrixFormatError("duplicate entries present and summing disabled")
    starts = np.flatnonzero(is_first)
    urow = row[starts]
    ucol = col[starts]
    uvals = np.add.reduceat(vals, starts)
    rowptr = np.zeros(coo.nrows + 1, dtype=np.int64)
    np.add.at(rowptr, urow + 1, 1)
    np.cumsum(rowptr, out=rowptr)
    return CSRMatrix(coo.nrows, coo.ncols, rowptr, ucol, uvals)


def csr_from_dense(dense: np.ndarray, tol: float = 0.0) -> CSRMatrix:
    """Convert a dense array to CSR, dropping entries with |v| <= tol."""
    dense = np.asarray(dense, dtype=np.float64)
    require(dense.ndim == 2, MatrixFormatError,
            f"expected a 2-D array, got ndim={dense.ndim}")
    row, col = np.nonzero(np.abs(dense) > tol)
    return csr_from_coo(
        COOMatrix(dense.shape[0], dense.shape[1], row.astype(np.int64),
                  col.astype(np.int64), dense[row, col]))


def csr_identity(n: int) -> CSRMatrix:
    """The n-by-n identity in CSR form."""
    idx = np.arange(n, dtype=np.int64)
    return CSRMatrix(n, n, np.arange(n + 1, dtype=np.int64), idx, np.ones(n))
