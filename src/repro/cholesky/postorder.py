"""Depth-first postorder of an elimination tree."""

from __future__ import annotations

import numpy as np

from ..errors import CholeskyError


def etree_postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder permutation of the forest given by ``parent``.

    Children are visited in ascending index order; roots likewise.  The
    result maps postorder position → vertex.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    if n and parent.max(initial=-1) >= n:
        raise CholeskyError("parent array has out-of-range entries")
    # build child lists (CSR-style)
    nchild = np.zeros(n + 1, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            nchild[p + 1] += 1
    headptr = np.cumsum(nchild)
    children = np.zeros(n, dtype=np.int64)
    fill = headptr[:-1].copy()
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            children[fill[p]] = j
            fill[p] += 1
    post = np.empty(n, dtype=np.int64)
    idx = 0
    # iterative DFS over every root
    for root in range(n):
        if parent[root] != -1:
            continue
        stack = [(root, 0)]
        while stack:
            v, ci = stack.pop()
            lo, hi = int(headptr[v]), int(headptr[v + 1])
            if ci < hi - lo:
                stack.append((v, ci + 1))
                stack.append((int(children[lo + ci]), 0))
            else:
                post[idx] = v
                idx += 1
    if idx != n:
        raise CholeskyError("parent array contains a cycle")
    return post
