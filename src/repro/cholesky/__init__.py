"""Symbolic sparse Cholesky analysis (paper §4.6).

Fill-in is quantified without numeric factorisation:

* :mod:`.etree` — Liu's elimination-tree algorithm;
* :mod:`.postorder` — depth-first postorder of the etree;
* :mod:`.rowcounts` — row counts of the Cholesky factor L via the
  skeleton/path-walking method of Gilbert, Ng & Peyton, giving
  ``nnz(L)`` in O(|L|) time;
* :mod:`.fill` — the paper's metric ``nnz(L) / nnz(A)`` per ordering.
"""

from .etree import elimination_tree
from .postorder import etree_postorder
from .rowcounts import cholesky_row_counts, cholesky_nnz
from .fill import fill_ratio, fill_ratios_per_ordering

__all__ = [
    "elimination_tree",
    "etree_postorder",
    "cholesky_row_counts",
    "cholesky_nnz",
    "fill_ratio",
    "fill_ratios_per_ordering",
]
