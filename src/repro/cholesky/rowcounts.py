"""Row counts of the Cholesky factor (Gilbert–Ng–Peyton style).

``rowcount[i] = |{ j ≤ i : L_ij ≠ 0 }|`` — the number of nonzeros in
row i of L (including the diagonal).  Row i of L is exactly the set of
vertices on the etree paths from each lower-triangular nonzero column j
of row i up towards i; walking each path and stopping at already-marked
vertices visits every element of the row once, so the total work is
O(nnz(L)).

``nnz(L) = Σ rowcount`` is all the fill experiment needs.
"""

from __future__ import annotations

import numpy as np

from ..errors import CholeskyError
from ..matrix.csr import CSRMatrix
from .etree import elimination_tree


def cholesky_row_counts(a: CSRMatrix,
                        parent: np.ndarray | None = None) -> np.ndarray:
    """Row counts of L for the pattern-symmetric matrix ``a``."""
    if parent is None:
        parent = elimination_tree(a)
    n = a.nrows
    counts = np.ones(n, dtype=np.int64)  # the diagonal of each row
    mark = np.full(n, -1, dtype=np.int64)
    rowptr, colidx = a.rowptr, a.colidx
    for i in range(n):
        mark[i] = i
        for p in range(int(rowptr[i]), int(rowptr[i + 1])):
            j = int(colidx[p])
            if j >= i:
                break
            # walk the etree path from j toward i, counting new vertices
            while mark[j] != i:
                mark[j] = i
                counts[i] += 1
                j = int(parent[j])
                if j == -1:
                    raise CholeskyError(
                        "etree path escaped the forest; inconsistent input")
    return counts


def cholesky_nnz(a: CSRMatrix) -> int:
    """Number of nonzeros of the Cholesky factor L (lower triangle,
    diagonal included)."""
    return int(cholesky_row_counts(a).sum())
