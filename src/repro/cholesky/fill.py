"""Cholesky fill ratio per ordering (paper Figure 6).

``fill_ratio = nnz(L) / nnz(A)`` where A = LLᵀ, counting the full
symmetric A (both triangles plus diagonal) as the paper does, and L's
lower triangle including the diagonal.  Orderings are applied
symmetrically before the symbolic analysis; the Gray ordering is
excluded (it is unsymmetric and cannot precondition a Cholesky
factorisation, §4.6).
"""

from __future__ import annotations

import numpy as np

from ..errors import CholeskyError
from ..matrix.csr import CSRMatrix
from ..matrix.symmetry import is_pattern_symmetric, symmetrize_pattern
from ..reorder.perm import OrderingResult
from .rowcounts import cholesky_nnz


def fill_ratio(a: CSRMatrix, ordering: OrderingResult | None = None) -> float:
    """nnz(L)/nnz(A) for ``a`` under ``ordering`` (None = original).

    ``a``'s pattern is symmetrised if needed; a diagonal is implicitly
    assumed present (SPD matrices always have one — rows without one
    get it added during symmetrisation of the analysis pattern).
    """
    if ordering is not None and not ordering.symmetric:
        raise CholeskyError(
            f"{ordering.algorithm} is not a symmetric ordering and cannot "
            "be used for Cholesky factorisation")
    pattern = a if is_pattern_symmetric(a) else symmetrize_pattern(a)
    # ensure a full diagonal so the etree is well defined
    diag_missing = np.flatnonzero(pattern.diagonal() == 0)
    if diag_missing.size:
        from ..matrix.build import coo_from_arrays, csr_from_coo

        rows = np.concatenate([pattern.row_of_entry(), diag_missing])
        cols = np.concatenate([pattern.colidx, diag_missing])
        pattern = csr_from_coo(
            coo_from_arrays(pattern.nrows, pattern.ncols, rows, cols))
    if ordering is not None:
        pattern = ordering.apply(pattern)
    nnz_l = cholesky_nnz(pattern)
    return float(nnz_l / pattern.nnz)


def fill_ratios_per_ordering(a: CSRMatrix, orderings: dict) -> dict:
    """Map ordering name → fill ratio for every symmetric ordering in
    ``orderings`` (name → OrderingResult), plus the original order."""
    out = {"original": fill_ratio(a)}
    for name, result in orderings.items():
        if not result.symmetric:
            continue
        out[name] = fill_ratio(a, result)
    return out
