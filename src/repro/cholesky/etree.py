"""Elimination tree of a symmetric sparse matrix (Liu's algorithm).

``parent[j]`` is the parent of column j in the elimination tree of the
Cholesky factorisation A = LLᵀ, or ``-1`` for roots.  Liu's algorithm
runs in near-linear time using path compression over "virtual roots"
(ancestor links).
"""

from __future__ import annotations

import numpy as np

from ..errors import CholeskyError
from ..matrix.csr import CSRMatrix
from ..matrix.symmetry import is_pattern_symmetric
from ..util.validate import require


def elimination_tree(a: CSRMatrix) -> np.ndarray:
    """Compute the etree parent array for pattern-symmetric square ``a``.

    Only the lower-triangular pattern is consulted (row i's entries with
    column < i), as in the standard formulation.
    """
    require(a.is_square, CholeskyError,
            f"elimination tree needs a square matrix, got {a.shape}")
    require(is_pattern_symmetric(a), CholeskyError,
            "elimination tree needs a structurally symmetric matrix; "
            "symmetrise the pattern first")
    n = a.nrows
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    rowptr, colidx = a.rowptr, a.colidx
    for i in range(n):
        for p in range(int(rowptr[i]), int(rowptr[i + 1])):
            k = int(colidx[p])
            if k >= i:
                break  # columns sorted: rest are upper triangle
            # walk from k to the root of its current subtree, compressing
            while True:
                r = int(ancestor[k])
                ancestor[k] = i
                if r == -1:
                    parent[k] = i
                    break
                if r == i:
                    break
                k = r
    return parent
