"""Process-wide metrics registry: Counter, Gauge, Histogram.

The paper's contribution is *measurement*, and before this module the
pipeline's own measurements were scattered: module-level ``COUNTERS``
dicts in :mod:`repro.machine.reuse` and :mod:`repro.spmv.schedule`,
three cache-stats shapes, and a hand-rolled metrics dataclass in the
sweep engine.  Everything now funnels through one
:class:`MetricsRegistry`:

* **Counter** — a monotonically increasing integer (cache hits,
  statistics builds, requests served).
* **Gauge** — a last-write-wins scalar (bytes resident, pool size).
* **Histogram** — observation counts over *fixed log-spaced buckets*
  (request latencies, span durations).  Fixed bucket bounds make
  histograms from different processes mergeable by element-wise
  addition, which is exactly what the sweep engine does with the
  registries its workers ship back.

The registry serialises to a plain-dict :meth:`~MetricsRegistry.
snapshot`; :meth:`~MetricsRegistry.delta_since` subtracts an earlier
snapshot and :meth:`~MetricsRegistry.merge_delta` adds a delta into
another registry.  ``merge_delta(delta_since(...))`` is the worker →
engine shipping protocol: workers report only what *they* did, so
counters are never lost or double-counted no matter how tasks are
retried or resumed (a worker that dies mid-chunk simply never ships —
its cells are recomputed and counted exactly once by whoever finishes
them).

Only the standard library is used; the module imports nothing from the
rest of :mod:`repro` so every subsystem can depend on it.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections.abc import Mapping

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "CounterView",
    "REGISTRY", "get_registry", "log_buckets", "snapshot_quantile",
]


def log_buckets(lo: float = 1e-6, hi: float = 1e3,
                per_decade: int = 3) -> tuple:
    """Fixed log-spaced histogram bucket upper bounds.

    ``per_decade`` bounds per factor of ten, from ``lo`` up to and
    including ``hi`` (seconds by convention: 1 µs .. ~17 min by
    default).  The bounds are generated deterministically so two
    processes that never exchanged configuration still produce
    mergeable histograms.
    """
    if not (lo > 0 and hi > lo and per_decade >= 1):
        raise ValueError(
            f"invalid bucket spec lo={lo} hi={hi} per_decade={per_decade}")
    n = int(round(math.log10(hi / lo) * per_decade))
    bounds = [lo * 10.0 ** (i / per_decade) for i in range(n + 1)]
    return tuple(round(b, 12) for b in bounds)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"{self.name}: counters only go up, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-write-wins scalar metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Observation counts over fixed log-spaced buckets.

    ``counts[i]`` is the number of observations ``<= bounds[i]`` (and
    greater than the previous bound); the final slot counts overflows.
    Because the bounds are fixed at construction, histograms with equal
    bounds merge by element-wise addition of their counts.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count", "_max",
                 "_lock")

    def __init__(self, name: str, bounds=None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else log_buckets()
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError(f"{name}: bucket bounds must be sorted")
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            seen = 0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank and c:
                    return (self.bounds[i] if i < len(self.bounds)
                            else self._max)
        return self._max

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "histogram", "count": self._count,
                    "sum": self._sum, "max": self._max,
                    "bounds": list(self.bounds),
                    "counts": list(self._counts)}


def snapshot_quantile(entry: dict, q: float) -> float:
    """Quantile estimate from a histogram *snapshot* (or delta) dict.

    Mirrors :meth:`Histogram.quantile` — the upper bound of the bucket
    holding the q-th observation, the recorded ``max`` for the
    overflow slot — but works on the serialised shape, so the serving
    daemon can report SLOs from a ``delta_since`` of the process
    registry (i.e. *this daemon instance's* latencies, not whatever
    an embedding test process observed before it started).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if entry.get("type") != "histogram":
        raise ValueError(f"not a histogram snapshot: {entry!r}")
    bounds = entry.get("bounds", [])
    counts = entry.get("counts", [])
    total = entry.get("count", 0)
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0
    hi = entry.get("max", 0.0)
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank and c:
            if i >= len(bounds):
                return hi
            # bucket bounds can overshoot the largest observation;
            # an SLO report must never claim p95 > max
            return min(bounds[i], hi) if hi > 0 else bounds[i]
    return hi


class MetricsRegistry:
    """A named collection of metrics with a snapshot/delta/merge API."""

    def __init__(self) -> None:
        self._metrics: dict = {}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------
    def _get(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds=None) -> Histogram:
        hist = self._get(name, Histogram, bounds)
        if bounds is not None and tuple(bounds) != hist.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different "
                "bucket bounds")
        return hist

    # -- introspection -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def values(self) -> dict:
        """Flat ``{name: value}`` of every counter and gauge (histogram
        entries report their observation count)."""
        with self._lock:
            metrics = list(self._metrics.items())
        out = {}
        for name, m in metrics:
            out[name] = m.count if isinstance(m, Histogram) else m.value
        return out

    # -- snapshot / delta / merge --------------------------------------
    def snapshot(self) -> dict:
        """JSON-serialisable state of every metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: m.snapshot() for name, m in metrics}

    def delta_since(self, before: dict) -> dict:
        """What happened between ``before`` (an earlier
        :meth:`snapshot`) and now, as a snapshot-shaped dict.

        Counters and histograms subtract; gauges report their current
        value (a gauge is a level, not a flow).  Metrics absent from
        ``before`` report their full current state.
        """
        now = self.snapshot()
        delta = {}
        for name, cur in now.items():
            old = before.get(name)
            if old is None or old.get("type") != cur["type"]:
                entry = dict(cur)
            elif cur["type"] == "counter":
                entry = {"type": "counter",
                         "value": cur["value"] - old["value"]}
            elif cur["type"] == "histogram":
                counts = [c - o for c, o in
                          zip(cur["counts"], old.get("counts", []))]
                if len(counts) != len(cur["counts"]):
                    counts = list(cur["counts"])
                entry = {"type": "histogram",
                         "count": cur["count"] - old.get("count", 0),
                         "sum": cur["sum"] - old.get("sum", 0.0),
                         "max": cur["max"], "bounds": cur["bounds"],
                         "counts": counts}
            else:  # gauge
                entry = dict(cur)
            if entry.get("value") or entry.get("count") \
                    or cur["type"] == "gauge":
                delta[name] = entry
        return delta

    def merge_delta(self, delta: dict) -> None:
        """Add a :meth:`delta_since` result into this registry.

        This is the worker → engine shipping protocol: each worker
        reports only the work it did, so merging N worker deltas yields
        exact totals with no loss and no double counting.
        """
        for name, entry in delta.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(int(entry.get("value", 0)))
            elif kind == "gauge":
                self.gauge(name).set(entry.get("value", 0.0))
            elif kind == "histogram":
                hist = self.histogram(name, entry.get("bounds"))
                with hist._lock:
                    for i, c in enumerate(entry.get("counts", [])):
                        if i < len(hist._counts):
                            hist._counts[i] += int(c)
                    hist._sum += entry.get("sum", 0.0)
                    hist._count += int(entry.get("count", 0))
                    hist._max = max(hist._max, entry.get("max", 0.0))

    def reset(self) -> None:
        """Forget every metric (tests only)."""
        with self._lock:
            self._metrics.clear()


class CounterView(Mapping):
    """A live, read-only dict-like view over named registry counters.

    Legacy call sites (``repro.machine.reuse.COUNTERS``,
    ``repro.spmv.schedule.COUNTERS``) exposed plain dicts that tests,
    benchmarks and the sweep engine read with ``dict(COUNTERS)`` /
    ``COUNTERS[key]``.  The view keeps those reads working verbatim
    while the values live in the registry.
    """

    def __init__(self, counters: dict) -> None:
        self._counters = dict(counters)  # legacy key -> Counter

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __iter__(self):
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return f"CounterView({dict(self)!r})"


#: the process-global default registry; workers snapshot/delta it and
#: the sweep engine merges their deltas into a run-local registry.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
