"""Span tracer serialising to Chrome trace-event JSON and JSONL.

One call site::

    from repro.obs import span

    with span("reorder", algo="RCM", matrix="stencil2d"):
        ...

Spans nest (per-thread), are thread-safe, and use the monotonic
``time.perf_counter`` clock — on Linux that is ``CLOCK_MONOTONIC``,
which is system-wide, so spans recorded in sweep worker *processes*
line up with the parent's on a common time axis.

Tracing is **disabled by default** and the disabled path is a no-op
fast path: ``span(...)`` performs one attribute check and returns a
shared singleton context manager — no allocation, no clock read, no
lock (``benchmarks/bench_obs_overhead.py`` gates the overhead at
< 5 % of an uninstrumented run).

When enabled, every finished span becomes one Chrome *complete* event
(``"ph": "X"``) with microsecond ``ts``/``dur``, the recording
process id and thread id, and the span's keyword attributes under
``args``.  :meth:`Tracer.save` writes the
``{"traceEvents": [...]}`` JSON object format, loadable directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; enabling
with ``jsonl_path`` additionally appends each event as one JSON line
to an append-only log the moment it finishes, so a killed process
loses at most a torn final line (the same contract as the sweep
journal).

Worker shipping: a sweep worker drains its buffered events with
:meth:`Tracer.drain` into the task outcome; the engine merges them
with :meth:`Tracer.merge`.  Because events carry their own ``pid``,
a merged trace shows one lane per worker.

Cross-process correlation: a **trace context** installed with
:func:`set_trace_context` (or the :func:`trace_context` manager)
makes every span record three extra ``args`` — a process-unique
``span_id``, the ``parent_id`` of the enclosing span (the context's
parent when the thread's stack is empty, e.g. in a fresh worker
process or advisor pool thread), and the context's ``trace_id``.
Merged traces then form one causally-linked tree per request/sweep
instead of disjoint per-process event soups; without a context the
event schema is unchanged.  Code that cannot use the thread-local
nesting stack (the asyncio serving path interleaves coroutines on one
thread) times its spans itself and records them with explicit ids via
:meth:`Tracer.record_span`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = ["Tracer", "TRACER", "span", "enable", "disable", "is_enabled",
           "new_span_id", "current_span_stack", "set_trace_context",
           "get_trace_context", "clear_trace_context", "trace_context",
           "track_stacks"]

#: schema constants for one Chrome complete event
_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")

#: per-process monotonic span-id counter (pid-prefixed ids stay unique
#: across the processes of a merged trace; fork inherits the counter
#: value but never the pid, so children cannot collide with the parent)
_IDS = itertools.count(1)

#: thread-local span stack + trace context
_TLS = threading.local()

#: when True, ``span()`` maintains the thread-local stack even with
#: tracing disabled (the sampling profiler attributes samples to it)
_STACK_TRACKING = False


def new_span_id() -> str:
    """A process-unique span id, safe to mix across merged processes."""
    return f"{os.getpid():x}-{next(_IDS):x}"


def _span_stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def current_span_stack() -> list:
    """``[(name, span_id), ...]`` of the calling thread's open spans,
    outermost first.  ``span_id`` is ``None`` outside a trace context."""
    return list(_span_stack())


def set_trace_context(trace_id: str, parent_id: str | None = None) -> None:
    """Install ``(trace_id, parent_id)`` for the calling thread.

    While set, every span records ``span_id``/``parent_id``/``trace_id``
    args; a span opened on an empty stack parents to ``parent_id`` —
    the cross-process link a sweep worker or advisor pool thread uses
    to hang its spans under the engine's / request's root span.
    """
    _TLS.ctx = (trace_id, parent_id)


def get_trace_context() -> tuple | None:
    return getattr(_TLS, "ctx", None)


def clear_trace_context() -> None:
    _TLS.ctx = None


@contextmanager
def trace_context(trace_id: str, parent_id: str | None = None):
    """Scoped :func:`set_trace_context`; restores the previous context."""
    previous = get_trace_context()
    set_trace_context(trace_id, parent_id)
    try:
        yield
    finally:
        _TLS.ctx = previous


def track_stacks(on: bool) -> None:
    """Maintain the span stack even while tracing is disabled (the
    profiler turns this on so samples can be attributed to spans
    without paying for event recording)."""
    global _STACK_TRACKING
    _STACK_TRACKING = bool(on)


class _NopSpan:
    """The shared disabled-tracing span: enters and exits for free."""

    __slots__ = ()

    def __enter__(self) -> "_NopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NopSpan":
        return self


_NOP = _NopSpan()


class _StackSpan:
    """Stack bookkeeping without event recording (profiler mode)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def set(self, **attrs) -> "_StackSpan":
        return self

    def __enter__(self) -> "_StackSpan":
        _span_stack().append((self.name, None))
        return self

    def __exit__(self, *exc) -> bool:
        stack = _span_stack()
        if stack:
            stack.pop()
        return False


class _LiveSpan:
    """One enabled span; records a complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "args", "_t0", "span_id")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes discovered mid-span (e.g. a result size)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        # ids are assigned only under a trace context, so traces from
        # plain (uncorrelated) runs keep the original event schema
        self.span_id = (new_span_id()
                        if getattr(_TLS, "ctx", None) is not None else None)
        _span_stack().append((self.name, self.span_id))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        stack = _span_stack()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        ids = None
        if self.span_id is not None:
            trace_id, ctx_parent = _TLS.ctx
            parent = None
            for _name, sid in reversed(stack):
                if sid is not None:
                    parent = sid
                    break
            ids = (self.span_id, parent or ctx_parent, trace_id)
        self._tracer._record(self.name, self._t0, t1 - self._t0,
                             self.args, ids=ids)
        return False


class Tracer:
    """Buffering span recorder with Chrome trace-event output."""

    #: in-RAM buffer cap; events past it are counted in ``dropped``
    #: (the JSONL sidecar, when enabled, still receives every event)
    DEFAULT_MAX_EVENTS = 1_000_000

    def __init__(self, enabled: bool = False,
                 max_events: int | None = None) -> None:
        self.enabled = enabled
        self.max_events = max_events or self.DEFAULT_MAX_EVENTS
        self.dropped = 0
        self._events: list = []
        self._lock = threading.Lock()
        self._jsonl_path: str | None = None
        self._jsonl_fh = None

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args):
        """A context manager timing one named span.

        The disabled fast path returns a shared no-op singleton; keep
        this call on hot paths only if the work inside dwarfs one
        attribute check (the engine's per-cell spans qualify).
        """
        if not self.enabled:
            return _NOP
        return _LiveSpan(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        if self.enabled:
            self._record(name, time.perf_counter(), 0.0, args, ph="i")

    def record_span(self, name: str, t0: float, dur: float,
                    span_id: str | None = None,
                    parent_id: str | None = None,
                    trace_id: str | None = None, **args) -> None:
        """Record one already-timed span with explicit correlation ids.

        The asyncio serving path cannot use the thread-local nesting
        stack (coroutines interleave on one thread), so it times its
        spans itself and records them here with explicit parent links.
        """
        if not self.enabled:
            return
        ids = None
        if span_id or parent_id or trace_id:
            ids = (span_id, parent_id, trace_id)
        self._record(name, t0, dur, args, ids=ids)

    def _record(self, name: str, t0: float, dur: float, args: dict,
                ph: str = "X", ids=None) -> None:
        if ids is not None:
            span_id, parent_id, trace_id = ids
            args = dict(args)
            if span_id:
                args["span_id"] = span_id
            if parent_id:
                args["parent_id"] = parent_id
            if trace_id:
                args["trace_id"] = trace_id
        event = {
            "name": name, "ph": ph, "cat": "repro",
            "ts": round(t0 * 1e6, 3), "dur": round(dur * 1e6, 3),
            "pid": os.getpid(), "tid": threading.get_ident(),
        }
        if ph == "i":
            event.pop("dur")
            event["s"] = "p"  # process-scoped instant
        if args:
            event["args"] = args
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append(event)
            else:
                self.dropped += 1
            if self._jsonl_fh is not None:
                self._write_jsonl(event)

    def _write_jsonl(self, event: dict) -> None:
        """Append one event to the JSONL sidecar (called under the
        lock; a seam so the mutation smoke can corrupt sidecar events
        without touching the in-RAM buffer)."""
        self._jsonl_fh.write(json.dumps(event) + "\n")
        self._jsonl_fh.flush()

    # -- buffers ---------------------------------------------------------
    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def drain(self) -> list:
        """Pop and return every buffered event (worker shipping)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def merge(self, events) -> None:
        """Append events shipped from another tracer (another process)."""
        if not events:
            return
        events = list(events)
        with self._lock:
            room = self.max_events - len(self._events)
            if room < len(events):
                self.dropped += len(events) - max(0, room)
                events = events[:max(0, room)]
            self._events.extend(events)

    def clear(self) -> None:
        self.drain()
        self.dropped = 0

    @property
    def stats(self) -> dict:
        """Buffer occupancy for ``/metricsz``: a saturated tracer is
        visible (``dropped_events`` > 0) instead of silent."""
        with self._lock:
            buffered = len(self._events)
        return {"enabled": self.enabled, "buffered_events": buffered,
                "max_events": self.max_events,
                "dropped_events": self.dropped,
                "jsonl_path": self._jsonl_path}

    # -- lifecycle -------------------------------------------------------
    def enable(self, jsonl_path: str | None = None) -> None:
        """Turn tracing on, optionally mirroring events to a JSONL log."""
        if jsonl_path:
            self._jsonl_path = jsonl_path
            self._jsonl_fh = open(jsonl_path, "at")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        if self._jsonl_fh is not None:
            self._jsonl_fh.close()
            self._jsonl_fh = None
            self._jsonl_path = None

    # -- output ----------------------------------------------------------
    def save(self, path: str, extra_events=None) -> int:
        """Write the Chrome trace-event JSON object format.

        Returns the number of events written.  The buffer is *not*
        cleared, so a trace can be saved incrementally.
        """
        events = self.events()
        if extra_events:
            events = events + list(extra_events)
        events.sort(key=lambda e: (e.get("pid", 0), e.get("ts", 0.0)))
        with open(path, "wt") as f:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms",
                       "otherData": {"producer": "repro.obs"}}, f)
            f.write("\n")
        return len(events)


#: the process-global tracer; ``repro.obs.span`` records into it.
TRACER = Tracer()


def span(name: str, **args):
    """Module-level shorthand for ``TRACER.span`` (the common spelling
    at instrumentation sites)."""
    if TRACER.enabled:
        return _LiveSpan(TRACER, name, args)
    if _STACK_TRACKING:
        return _StackSpan(name)
    return _NOP


def enable(jsonl_path: str | None = None) -> None:
    TRACER.enable(jsonl_path)


def disable() -> None:
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled
