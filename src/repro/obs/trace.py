"""Span tracer serialising to Chrome trace-event JSON and JSONL.

One call site::

    from repro.obs import span

    with span("reorder", algo="RCM", matrix="stencil2d"):
        ...

Spans nest (per-thread), are thread-safe, and use the monotonic
``time.perf_counter`` clock — on Linux that is ``CLOCK_MONOTONIC``,
which is system-wide, so spans recorded in sweep worker *processes*
line up with the parent's on a common time axis.

Tracing is **disabled by default** and the disabled path is a no-op
fast path: ``span(...)`` performs one attribute check and returns a
shared singleton context manager — no allocation, no clock read, no
lock (``benchmarks/bench_obs_overhead.py`` gates the overhead at
< 5 % of an uninstrumented run).

When enabled, every finished span becomes one Chrome *complete* event
(``"ph": "X"``) with microsecond ``ts``/``dur``, the recording
process id and thread id, and the span's keyword attributes under
``args``.  :meth:`Tracer.save` writes the
``{"traceEvents": [...]}`` JSON object format, loadable directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; enabling
with ``jsonl_path`` additionally appends each event as one JSON line
to an append-only log the moment it finishes, so a killed process
loses at most a torn final line (the same contract as the sweep
journal).

Worker shipping: a sweep worker drains its buffered events with
:meth:`Tracer.drain` into the task outcome; the engine merges them
with :meth:`Tracer.merge`.  Because events carry their own ``pid``,
a merged trace shows one lane per worker.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["Tracer", "TRACER", "span", "enable", "disable", "is_enabled"]

#: schema constants for one Chrome complete event
_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


class _NopSpan:
    """The shared disabled-tracing span: enters and exits for free."""

    __slots__ = ()

    def __enter__(self) -> "_NopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NopSpan":
        return self


_NOP = _NopSpan()


class _LiveSpan:
    """One enabled span; records a complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes discovered mid-span (e.g. a result size)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._record(self.name, self._t0, t1 - self._t0, self.args)
        return False


class Tracer:
    """Buffering span recorder with Chrome trace-event output."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._events: list = []
        self._lock = threading.Lock()
        self._jsonl_path: str | None = None
        self._jsonl_fh = None

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args):
        """A context manager timing one named span.

        The disabled fast path returns a shared no-op singleton; keep
        this call on hot paths only if the work inside dwarfs one
        attribute check (the engine's per-cell spans qualify).
        """
        if not self.enabled:
            return _NOP
        return _LiveSpan(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        if self.enabled:
            self._record(name, time.perf_counter(), 0.0, args, ph="i")

    def _record(self, name: str, t0: float, dur: float, args: dict,
                ph: str = "X") -> None:
        event = {
            "name": name, "ph": ph, "cat": "repro",
            "ts": round(t0 * 1e6, 3), "dur": round(dur * 1e6, 3),
            "pid": os.getpid(), "tid": threading.get_ident(),
        }
        if ph == "i":
            event.pop("dur")
            event["s"] = "p"  # process-scoped instant
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)
            if self._jsonl_fh is not None:
                self._jsonl_fh.write(json.dumps(event) + "\n")
                self._jsonl_fh.flush()

    # -- buffers ---------------------------------------------------------
    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def drain(self) -> list:
        """Pop and return every buffered event (worker shipping)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def merge(self, events) -> None:
        """Append events shipped from another tracer (another process)."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def clear(self) -> None:
        self.drain()

    # -- lifecycle -------------------------------------------------------
    def enable(self, jsonl_path: str | None = None) -> None:
        """Turn tracing on, optionally mirroring events to a JSONL log."""
        if jsonl_path:
            self._jsonl_path = jsonl_path
            self._jsonl_fh = open(jsonl_path, "at")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        if self._jsonl_fh is not None:
            self._jsonl_fh.close()
            self._jsonl_fh = None
            self._jsonl_path = None

    # -- output ----------------------------------------------------------
    def save(self, path: str, extra_events=None) -> int:
        """Write the Chrome trace-event JSON object format.

        Returns the number of events written.  The buffer is *not*
        cleared, so a trace can be saved incrementally.
        """
        events = self.events()
        if extra_events:
            events = events + list(extra_events)
        events.sort(key=lambda e: (e.get("pid", 0), e.get("ts", 0.0)))
        with open(path, "wt") as f:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms",
                       "otherData": {"producer": "repro.obs"}}, f)
            f.write("\n")
        return len(events)


#: the process-global tracer; ``repro.obs.span`` records into it.
TRACER = Tracer()


def span(name: str, **args):
    """Module-level shorthand for ``TRACER.span`` (the common spelling
    at instrumentation sites)."""
    if not TRACER.enabled:
        return _NOP
    return _LiveSpan(TRACER, name, args)


def enable(jsonl_path: str | None = None) -> None:
    TRACER.enable(jsonl_path)


def disable() -> None:
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled
