"""Logging setup for the CLI and long-running sweeps.

The CLI used bare ``print()`` for status lines, which interleaves
badly when a ``--jobs N`` sweep's heartbeat races with other output.
This module wires the standard :mod:`logging` machinery instead:

* data output (tables, rankings) stays on **stdout** via ``print`` so
  pipelines keep working;
* status, progress and diagnostics go through the ``"repro"`` logger
  to **stderr**, one atomic ``emit`` per line (the stdlib handler
  holds a lock around each record, so heartbeat lines from the
  progress thread can never tear);
* ``--quiet`` raises the threshold to WARNING, ``--verbose`` lowers
  it to DEBUG.

Library code asks for a child logger with :func:`get_logger` and never
configures handlers itself; an application that embeds repro keeps
full control of logging configuration.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "setup_cli_logging", "LOGGER_NAME"]

LOGGER_NAME = "repro"


def get_logger(suffix: str | None = None) -> logging.Logger:
    """The package logger, or a dotted child (``get_logger("sweep")``
    → ``repro.sweep``)."""
    name = LOGGER_NAME if not suffix else f"{LOGGER_NAME}.{suffix}"
    return logging.getLogger(name)


def setup_cli_logging(quiet: bool = False, verbose: bool = False,
                      stream=None) -> logging.Logger:
    """Configure the CLI's stderr handler (idempotent).

    ``quiet`` wins over ``verbose`` when both are passed.  Returns the
    package logger.
    """
    logger = logging.getLogger(LOGGER_NAME)
    level = (logging.WARNING if quiet
             else logging.DEBUG if verbose else logging.INFO)
    logger.setLevel(level)
    stream = stream if stream is not None else sys.stderr
    # reuse the handler across repeated main() calls (tests) instead of
    # stacking duplicates
    for h in logger.handlers:
        if getattr(h, "_repro_cli", False):
            h.setLevel(level)
            # plain assignment, not setStream(): setStream flushes the
            # outgoing stream first, which raises if a previous owner
            # (e.g. a test's captured stderr) already closed it
            h.stream = stream
            break
    else:
        handler = logging.StreamHandler(stream)
        handler.setLevel(level)
        handler.setFormatter(logging.Formatter("%(message)s"))
        handler._repro_cli = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    logger.propagate = False
    return logger
