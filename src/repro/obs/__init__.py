"""repro.obs — unified tracing, metrics and run-manifest layer.

One import point for the observability primitives every subsystem
shares:

* :func:`span` / :data:`TRACER` — nested, thread-safe span tracing
  that serialises to Chrome trace-event JSON (open ``trace.json`` in
  Perfetto or ``chrome://tracing``) and an append-only JSONL log.
  Disabled by default; the disabled path is a no-op fast path.
* :class:`MetricsRegistry` / :data:`REGISTRY` — Counter / Gauge /
  Histogram metrics with a snapshot → delta → merge protocol that the
  sweep engine uses to aggregate worker registries exactly once.
* :func:`collect` / :class:`RunManifest` — provenance (run id, git
  SHA, seed, corpus signature, config, package versions) written next
  to every sweep/bench artifact.
* :data:`CACHE_STATS_KEYS` — the one cache-statistics schema
  (``hits/misses/evictions/hit_rate/size_bytes``) every cache's
  ``stats`` exposes.
* :func:`metric` / :func:`bench_record` / :class:`BenchLedger` — the
  benchmark ledger (``BENCH_<tier>.json`` history) and the
  :func:`compare_ledgers` regression gate behind
  ``repro perf record/compare/trend``.
* :class:`SamplingProfiler` / :func:`maybe_profile` — the stdlib
  ``signal.setitimer`` frame sampler behind ``repro profile`` and the
  ``--profile`` flags; attributes self-time to the span tree and
  emits collapsed flamegraph stacks.
* :func:`get_logger` / :func:`setup_cli_logging` — the CLI logging
  setup (``--quiet`` / ``--verbose``).

See ``docs/observability.md`` for naming conventions and workflows.
"""

from .cachestats import (CACHE_STATS_KEYS, CacheStatCounters, cache_stats,
                         sizeof_value)
from .log import get_logger, setup_cli_logging
from .manifest import RunManifest, collect
from .metrics import (REGISTRY, Counter, CounterView, Gauge, Histogram,
                      MetricsRegistry, get_registry, log_buckets)
from .perf import (BenchLedger, bench_record, compare_ledgers,
                   compare_records, metric, run_builtin_bench)
from .profiler import ProfilerError, SamplingProfiler, maybe_profile
from .trace import TRACER, Tracer, disable, enable, is_enabled, span

__all__ = [
    "CACHE_STATS_KEYS", "CacheStatCounters", "cache_stats",
    "sizeof_value", "get_logger", "setup_cli_logging", "RunManifest",
    "collect", "REGISTRY", "Counter", "CounterView", "Gauge",
    "Histogram", "MetricsRegistry", "get_registry", "log_buckets",
    "BenchLedger", "bench_record", "compare_ledgers", "compare_records",
    "metric", "run_builtin_bench", "ProfilerError", "SamplingProfiler",
    "maybe_profile",
    "TRACER", "Tracer", "disable", "enable", "is_enabled", "span",
]
