"""repro.obs — unified tracing, metrics and run-manifest layer.

One import point for the observability primitives every subsystem
shares:

* :func:`span` / :data:`TRACER` — nested, thread-safe span tracing
  that serialises to Chrome trace-event JSON (open ``trace.json`` in
  Perfetto or ``chrome://tracing``) and an append-only JSONL log.
  Disabled by default; the disabled path is a no-op fast path.
* :class:`MetricsRegistry` / :data:`REGISTRY` — Counter / Gauge /
  Histogram metrics with a snapshot → delta → merge protocol that the
  sweep engine uses to aggregate worker registries exactly once.
* :func:`collect` / :class:`RunManifest` — provenance (run id, git
  SHA, seed, corpus signature, config, package versions) written next
  to every sweep/bench artifact.
* :data:`CACHE_STATS_KEYS` — the one cache-statistics schema
  (``hits/misses/evictions/hit_rate/size_bytes``) every cache's
  ``stats`` exposes.
* :func:`get_logger` / :func:`setup_cli_logging` — the CLI logging
  setup (``--quiet`` / ``--verbose``).

See ``docs/observability.md`` for naming conventions and workflows.
"""

from .cachestats import (CACHE_STATS_KEYS, CacheStatCounters, cache_stats,
                         sizeof_value)
from .log import get_logger, setup_cli_logging
from .manifest import RunManifest, collect
from .metrics import (REGISTRY, Counter, CounterView, Gauge, Histogram,
                      MetricsRegistry, get_registry, log_buckets)
from .trace import TRACER, Tracer, disable, enable, is_enabled, span

__all__ = [
    "CACHE_STATS_KEYS", "CacheStatCounters", "cache_stats",
    "sizeof_value", "get_logger", "setup_cli_logging", "RunManifest",
    "collect", "REGISTRY", "Counter", "CounterView", "Gauge",
    "Histogram", "MetricsRegistry", "get_registry", "log_buckets",
    "TRACER", "Tracer", "disable", "enable", "is_enabled", "span",
]
