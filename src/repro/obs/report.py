"""Render and validate observability artifacts (``repro report``).

Consumes the three artifacts a traced sweep leaves behind —
``trace.json`` (Chrome trace events), the JSONL journal, and
``run_manifest.json`` — and renders per-stage / per-algorithm time
breakdowns plus the top-k slowest spans, the same decomposition the
paper uses to explain its results (per-stage reordering overhead in
Table 5 against the per-cell speedups of Figs. 2–5).

:func:`validate_trace` doubles as the schema gate behind
``repro report --check``: every event must carry the Chrome
trace-event required keys, ``ts``/``dur`` must be non-negative and
mutually consistent (complete ``X`` events on one thread either nest
or are disjoint — a partial overlap means a broken clock or a torn
merge), and ``B``/``E`` duration events must match up per thread.

:func:`validate_links` extends the gate to the correlation ids a
trace context adds (``span_id``/``parent_id``/``trace_id`` in
``args``): a ``parent_id`` must name a span present in the same
trace (orphans mean a torn merge or a corrupted sidecar), and a
child span's ``[ts, ts+dur]`` interval must sit inside its parent's
— a child that *exceeds* its parent means clock skew or corrupted
durations.  Cross-process links a server records for a client span
it cannot see locally use the ``remote_parent`` arg instead, which
this check deliberately ignores.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

__all__ = ["load_trace", "load_sidecar", "validate_trace",
           "validate_links", "merge_traces", "stage_breakdown",
           "attr_breakdown", "top_spans", "render_report",
           "check_artifacts"]

#: tolerance (µs) for nesting checks, covering ts/dur rounding.
_EPS_US = 0.01

_REQUIRED = ("name", "ph", "ts", "pid", "tid")


# ----------------------------------------------------------------------
# loading & validation
# ----------------------------------------------------------------------
def load_trace(path: str) -> list:
    """Events of a Chrome trace file (object or bare-array format)."""
    with open(path, "rt") as f:
        data = json.load(f)
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError(
                f"{path}: trace object has no 'traceEvents' array")
        return events
    if isinstance(data, list):
        return data
    raise ValueError(f"{path}: neither a trace object nor an event array")


def load_sidecar(path: str) -> list:
    """Events of a JSONL trace sidecar.

    The sidecar shares the journal's crash contract: a process killed
    mid-write leaves at most one torn *final* line, which is dropped
    silently.  A malformed line with complete lines after it is
    corruption, not a crash, and raises ``ValueError``.
    """
    events = []
    with open(path, "rt") as f:
        lines = f.read().splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn final line: the crash contract
            raise ValueError(
                f"{path}:{lineno}: corrupt sidecar line "
                f"({exc})") from None
        if not isinstance(event, dict):
            raise ValueError(
                f"{path}:{lineno}: sidecar line is not an object")
        events.append(event)
    return events


def load_any_trace(path: str) -> list:
    """Load ``.jsonl`` sidecars and ``.json`` Chrome traces alike."""
    if path.endswith(".jsonl"):
        return load_sidecar(path)
    return load_trace(path)


def merge_traces(paths, out_path: str) -> int:
    """Merge per-process trace files into one Chrome trace.

    The spans already share the system-wide monotonic clock and carry
    their recording pid, so merging is concatenation plus a stable
    sort; correlation ids (``span_id``/``parent_id``) recorded by
    each process keep pointing at each other in the merged timeline.
    Returns the number of events written.
    """
    events: list = []
    for path in paths:
        events.extend(load_any_trace(path))
    events.sort(key=lambda e: (e.get("pid", 0), e.get("ts", 0.0)))
    with open(out_path, "wt") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms",
                   "otherData": {"producer": "repro.obs"}}, f)
        f.write("\n")
    return len(events)


def validate_trace(events: list) -> list:
    """Schema problems of a trace-event list; empty means valid."""
    problems = []
    by_thread = defaultdict(list)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event #{i}: not an object")
            continue
        missing = [k for k in _REQUIRED if k not in ev]
        if missing:
            problems.append(f"event #{i}: missing keys {missing}")
            continue
        if not isinstance(ev["name"], str) or not ev["name"]:
            problems.append(f"event #{i}: name must be a non-empty string")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event #{i}: ts must be a number >= 0, "
                            f"got {ts!r}")
            continue
        ph = ev["ph"]
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event #{i}: X event needs dur >= 0, got {dur!r}")
                continue
        elif ph not in ("B", "E", "i", "I", "M", "C"):
            problems.append(f"event #{i}: unknown phase {ph!r}")
            continue
        by_thread[(ev["pid"], ev["tid"])].append((ts, i, ev))

    for (pid, tid), rows in by_thread.items():
        rows.sort(key=lambda r: r[0])
        open_be = []          # B/E stack: (name, ts)
        open_ends = []        # X nesting stack: end timestamps
        for ts, i, ev in rows:
            ph = ev["ph"]
            if ph == "B":
                open_be.append((ev["name"], ts))
            elif ph == "E":
                if not open_be:
                    problems.append(
                        f"event #{i} (pid {pid} tid {tid}): E without "
                        "a matching B")
                else:
                    name, t0 = open_be.pop()
                    if ts < t0:
                        problems.append(
                            f"event #{i}: E at {ts} precedes its B at "
                            f"{t0}")
            elif ph == "X":
                end = ts + ev["dur"]
                while open_ends and open_ends[-1] <= ts + _EPS_US:
                    open_ends.pop()
                if open_ends and end > open_ends[-1] + _EPS_US:
                    problems.append(
                        f"event #{i} ({ev['name']!r}, pid {pid} tid "
                        f"{tid}): span [{ts}, {end}] partially overlaps "
                        "an enclosing span — ts/dur are not "
                        "monotonically consistent")
                open_ends.append(end)
        for name, t0 in open_be:
            problems.append(
                f"pid {pid} tid {tid}: B event {name!r} at {t0} never "
                "closed (missing E)")
    return problems


def validate_links(events: list) -> list:
    """Correlation-id problems of a trace; empty means valid.

    Checks only events whose ``args`` carry ids (plain traces have
    none and pass vacuously): every local ``parent_id`` must resolve
    to a span in this event list, and a complete child span must lie
    within its complete parent's ``[ts, ts+dur]`` interval (allowing
    ``_EPS_US`` for rounding).  ``remote_parent`` links — a server
    span pointing at a client process's span — are exempt: they only
    resolve in a *merged* trace.
    """
    problems = []
    by_id: dict = {}
    for ev in events:
        if not isinstance(ev, dict):
            continue
        sid = (ev.get("args") or {}).get("span_id")
        if sid is not None:
            by_id[sid] = ev
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        args = ev.get("args") or {}
        parent_id = args.get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"event #{i} ({ev.get('name')!r}): parent_id "
                f"{parent_id!r} names no span in this trace (orphaned "
                "link — torn merge or corrupted sidecar)")
            continue
        if ev.get("ph") == "X" and parent.get("ph") == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            pts, pdur = parent.get("ts"), parent.get("dur")
            if not all(isinstance(v, (int, float))
                       for v in (ts, dur, pts, pdur)):
                continue  # schema problems are validate_trace's job
            if ts < pts - _EPS_US or ts + dur > pts + pdur + _EPS_US:
                problems.append(
                    f"event #{i} ({ev.get('name')!r}): span "
                    f"[{ts}, {ts + dur}] exceeds its parent "
                    f"{parent.get('name')!r} [{pts}, {pts + pdur}] — "
                    "clock skew or corrupted durations")
    return problems


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _complete(events: list) -> list:
    return [ev for ev in events
            if isinstance(ev, dict) and ev.get("ph") == "X"
            and isinstance(ev.get("dur"), (int, float))]


def stage_breakdown(events: list) -> dict:
    """``{span name: {count, total_s, mean_ms, max_ms}}``."""
    agg: dict = {}
    for ev in _complete(events):
        row = agg.setdefault(ev["name"],
                             {"count": 0, "total_us": 0.0, "max_us": 0.0})
        row["count"] += 1
        row["total_us"] += ev["dur"]
        row["max_us"] = max(row["max_us"], ev["dur"])
    return {
        name: {"count": r["count"],
               "total_s": r["total_us"] / 1e6,
               "mean_ms": r["total_us"] / r["count"] / 1e3,
               "max_ms": r["max_us"] / 1e3}
        for name, r in agg.items()}


def attr_breakdown(events: list, span_name: str, attr: str) -> dict:
    """Per-``args[attr]`` breakdown of one span family (e.g. the
    ``reorder`` spans keyed by ``algo``)."""
    picked = [ev for ev in _complete(events)
              if ev["name"] == span_name
              and attr in (ev.get("args") or {})]
    agg: dict = {}
    for ev in picked:
        key = str(ev["args"][attr])
        row = agg.setdefault(key, {"count": 0, "total_us": 0.0,
                                   "max_us": 0.0})
        row["count"] += 1
        row["total_us"] += ev["dur"]
        row["max_us"] = max(row["max_us"], ev["dur"])
    return {
        key: {"count": r["count"],
              "total_s": r["total_us"] / 1e6,
              "mean_ms": r["total_us"] / r["count"] / 1e3,
              "max_ms": r["max_us"] / 1e3}
        for key, r in agg.items()}


def top_spans(events: list, k: int = 10) -> list:
    """The k slowest complete spans, slowest first."""
    spans = sorted(_complete(events), key=lambda ev: -ev["dur"])
    return spans[:k]


def _span_label(ev: dict) -> str:
    args = ev.get("args") or {}
    parts = [f"{key}={args[key]}" for key in
             ("matrix", "algo", "ordering", "kernel", "arch")
             if key in args]
    return f"{ev['name']}" + (f" [{', '.join(parts)}]" if parts else "")


# ----------------------------------------------------------------------
# rendering & checking
# ----------------------------------------------------------------------
def _load_journal_summary(path: str) -> dict:
    from ..harness.engine import SweepJournal  # lazy: obs stays light

    signature, records, failures = SweepJournal.load(path)
    if signature is None:
        # the engine treats an empty/torn-only journal as a clean fresh
        # start, but as a *run artifact* it is a problem worth flagging
        raise ValueError(f"{path}: journal has no readable header line")
    return {"signature": signature, "records": len(records),
            "failures": len(failures)}


def render_report(trace_path: str | None = None,
                  journal_path: str | None = None,
                  manifest_path: str | None = None,
                  top: int = 10) -> str:
    """The human-readable ``repro report`` text."""
    from ..util import format_table

    lines = ["observability report"]
    events: list = []

    if manifest_path and os.path.exists(manifest_path):
        with open(manifest_path, "rt") as f:
            man = json.load(f)
        sha = (man.get("git_sha") or "?")[:12]
        dirty = " (dirty)" if man.get("git_dirty") else ""
        lines.append(
            f"  manifest   run {man.get('run_id', '?')}, git {sha}"
            f"{dirty}, seed {man.get('seed')}, "
            f"created {man.get('created', '?')}")
    if journal_path and os.path.exists(journal_path):
        j = _load_journal_summary(journal_path)
        lines.append(
            f"  journal    {journal_path}: {j['records']} records, "
            f"{j['failures']} failure rows")
    if trace_path and os.path.exists(trace_path):
        events = load_trace(trace_path)
        pids = {ev.get("pid") for ev in events if isinstance(ev, dict)}
        lines.append(
            f"  trace      {trace_path}: {len(events)} events from "
            f"{len(pids)} process(es)")
    if len(lines) == 1:
        return "observability report: no artifacts found"

    if events:
        stages = stage_breakdown(events)
        if stages:
            rows = [[name, r["count"], f"{r['total_s']:.3f}",
                     f"{r['mean_ms']:.2f}", f"{r['max_ms']:.2f}"]
                    for name, r in sorted(stages.items(),
                                          key=lambda kv: -kv[1]["total_s"])]
            lines += ["", "per-stage breakdown",
                      format_table(["stage", "spans", "total s",
                                    "mean ms", "max ms"], rows)]
        for span_name, attr, title in (
                ("reorder", "algo", "reordering time by algorithm"),
                ("model_eval", "ordering", "model evaluation by ordering"),
                ("model_eval", "arch", "model evaluation by architecture")):
            groups = attr_breakdown(events, span_name, attr)
            if groups:
                rows = [[key, r["count"], f"{r['total_s']:.3f}",
                         f"{r['mean_ms']:.2f}", f"{r['max_ms']:.2f}"]
                        for key, r in sorted(
                            groups.items(),
                            key=lambda kv: -kv[1]["total_s"])]
                lines += ["", title,
                          format_table([attr, "spans", "total s",
                                        "mean ms", "max ms"], rows)]
        slowest = top_spans(events, top)
        if slowest:
            rows = [[i + 1, _span_label(ev), f"{ev['dur'] / 1e3:.2f}",
                     ev.get("pid", "?")]
                    for i, ev in enumerate(slowest)]
            lines += ["", f"top {len(slowest)} slowest spans",
                      format_table(["#", "span", "ms", "pid"], rows)]
    return "\n".join(lines)


def check_artifacts(trace_path: str | None = None,
                    journal_path: str | None = None,
                    manifest_path: str | None = None,
                    require_spans=(),
                    sidecar_path: str | None = None) -> list:
    """Validate artifacts for CI (``repro report --check``).

    Returns the list of problems (empty = pass).  ``require_spans``
    optionally names span families that must appear in the trace (the
    smoke job requires ``reorder``, ``reuse_stats``, ``model_eval``).
    ``sidecar_path`` additionally validates the JSONL sidecar written
    alongside the trace — schema *and* correlation links, so negative
    durations, orphaned parent ids and child-exceeds-parent clock
    skew in the crash log are caught even when the final trace looks
    clean.
    """
    from .manifest import RunManifest

    problems = []
    events: list = []
    if trace_path:
        if not os.path.exists(trace_path):
            problems.append(f"trace: {trace_path} does not exist")
        else:
            try:
                events = load_trace(trace_path)
            except (ValueError, json.JSONDecodeError) as exc:
                problems.append(f"trace: {exc}")
            else:
                if not events:
                    problems.append("trace: no events recorded")
                problems += [f"trace: {p}" for p in validate_trace(events)]
                problems += [f"trace: {p}" for p in validate_links(events)]
                names = {ev.get("name") for ev in events
                         if isinstance(ev, dict)}
                for want in require_spans:
                    if want not in names:
                        problems.append(
                            f"trace: required span {want!r} absent")
    if sidecar_path:
        if not os.path.exists(sidecar_path):
            problems.append(f"sidecar: {sidecar_path} does not exist")
        else:
            try:
                side_events = load_sidecar(sidecar_path)
            except ValueError as exc:
                problems.append(f"sidecar: {exc}")
            else:
                problems += [f"sidecar: {p}"
                             for p in validate_trace(side_events)]
                problems += [f"sidecar: {p}"
                             for p in validate_links(side_events)]
    if journal_path:
        if not os.path.exists(journal_path):
            problems.append(f"journal: {journal_path} does not exist")
        else:
            try:
                _load_journal_summary(journal_path)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                problems.append(f"journal: {exc}")
    if manifest_path:
        if not os.path.exists(manifest_path):
            problems.append(f"manifest: {manifest_path} does not exist")
        else:
            try:
                with open(manifest_path, "rt") as f:
                    data = json.load(f)
            except (OSError, json.JSONDecodeError) as exc:
                problems.append(f"manifest: {exc}")
            else:
                problems += RunManifest.validate(data)
                problems += _check_snapshot_provenance(data)
    return problems


def _check_snapshot_provenance(manifest_data: dict) -> list:
    """Cross-check a manifest's snapshot record against the snapshot
    directory it points at.

    A sweep run against a corpus snapshot records the snapshot's path
    and content address in the manifest config.  If the directory has
    since been rebuilt with different parameters (or edited), its
    recomputed address no longer matches — aggregating that journal
    would silently mix results from two different corpora, so the
    mismatch is a check failure, not a warning.
    """
    config = manifest_data.get("config")
    snap = config.get("snapshot") if isinstance(config, dict) else None
    if not isinstance(snap, dict):
        return []
    path = snap.get("path")
    recorded = snap.get("signature")
    if not path or not recorded:
        return [f"manifest: snapshot record incomplete: {snap}"]
    from ..errors import StorageError
    from ..storage import corpus_signature

    try:
        actual = corpus_signature(path)
    except StorageError as exc:
        return [f"manifest: snapshot {path} unreadable: {exc}"]
    if actual != recorded:
        return [f"manifest: snapshot {path} has content address "
                f"{actual} but the journal's run recorded {recorded} "
                "— the corpus changed since this sweep ran"]
    return []
