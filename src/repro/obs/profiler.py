"""repro.obs.profiler — a stdlib-only sampling profiler.

A `signal.setitimer` interval timer delivers a signal every
``interval`` seconds; the handler walks the interrupted frame's
``f_back`` chain and counts one sample against that call stack,
prefixed with the open *span* names from the tracer's thread-local
stack (``span:<name>`` pseudo-frames), so self-time lands on the same
tree ``repro report`` renders from traces.  Output is the collapsed
stack format (``a;b;c <count>`` lines) consumed by ``flamegraph.pl``
and https://speedscope.app.

Two timers:

* ``prof`` (default) — ``ITIMER_PROF``/``SIGPROF`` ticks on consumed
  CPU time (user+sys).  Attribution matches "where the cycles went"
  and it cannot collide with the engine's per-cell ``SIGALRM``
  deadline timer.
* ``real`` — ``ITIMER_REAL``/``SIGALRM`` ticks on wall clock; use it
  for sleep-dominated workloads (the serve daemon idles in the event
  loop), but never around an engine run with ``--timeout``.

Constraints inherited from the signal module: the profiler must be
started on the **main thread** (CPython only delivers signals there),
and it samples that thread's frames.  Sweep worker *processes* are
separate interpreters — profile them by profiling an inline
(``--jobs 1``) run, which executes the same task code.

Overhead is one handler call per interval: a frame walk plus one dict
update, no allocation proportional to run time beyond distinct
stacks.  ``benchmarks/bench_obs_overhead.py`` gates the deterministic
bound (samples x per-sample handler cost) at < 5 % of wall time.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from . import trace as trace_mod
from .log import get_logger

__all__ = ["SamplingProfiler", "ProfilerError", "maybe_profile",
           "add_profile_parser"]

log = get_logger("profiler")


class ProfilerError(RuntimeError):
    pass


#: timer name -> (itimer constant, signal delivered)
_TIMERS = {
    "prof": (signal.ITIMER_PROF, signal.SIGPROF),
    "real": (signal.ITIMER_REAL, signal.SIGALRM),
}


def _frame_label(code) -> str:
    base = os.path.basename(code.co_filename)
    if base.endswith(".py"):
        base = base[:-3]
    return f"{base}:{code.co_name}"


class SamplingProfiler:
    """Context manager sampling the main thread's call stack.

    ``counts`` maps a root-first stack tuple (span pseudo-frames, then
    code frames) to its sample count; ``samples`` is the total.
    """

    def __init__(self, interval: float = 0.005, timer: str = "prof",
                 max_depth: int = 64, track_spans: bool = True) -> None:
        if timer not in _TIMERS:
            raise ProfilerError(
                f"unknown timer {timer!r} (expected prof or real)")
        if interval <= 0:
            raise ProfilerError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.timer = timer
        self.max_depth = max_depth
        self.track_spans = track_spans
        self.counts: dict = {}
        self.samples = 0
        self.wall_seconds = 0.0
        self._t0: float | None = None
        self._prev_handler = None

    # -- the handler ---------------------------------------------------
    def _sample(self, signum, frame) -> None:
        self.samples += 1
        stack = []
        f, depth = frame, 0
        while f is not None and depth < self.max_depth:
            stack.append(_frame_label(f.f_code))
            f = f.f_back
            depth += 1
        stack.reverse()
        spans = tuple("span:" + name for name, _sid
                      in trace_mod.current_span_stack())
        key = spans + tuple(stack)
        self.counts[key] = self.counts.get(key, 0) + 1

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "SamplingProfiler":
        if threading.current_thread() is not threading.main_thread():
            raise ProfilerError(
                "the sampling profiler must start on the main thread "
                "(CPython delivers signals there)")
        itimer, sig = _TIMERS[self.timer]
        if self.track_spans and not trace_mod.is_enabled():
            trace_mod.track_stacks(True)
        self._prev_handler = signal.signal(sig, self._sample)
        self._t0 = time.perf_counter()
        signal.setitimer(itimer, self.interval, self.interval)
        return self

    def __exit__(self, *exc) -> bool:
        itimer, sig = _TIMERS[self.timer]
        signal.setitimer(itimer, 0.0)
        self.wall_seconds += time.perf_counter() - self._t0
        if self._prev_handler is not None:
            signal.signal(sig, self._prev_handler)
            self._prev_handler = None
        if self.track_spans:
            trace_mod.track_stacks(False)
        return False

    # -- output --------------------------------------------------------
    def collapsed(self) -> list:
        """``"frame;frame;frame count"`` lines (flamegraph.pl input)."""
        return [";".join(key) + f" {n}"
                for key, n in sorted(self.counts.items())]

    def save(self, path: str) -> int:
        lines = self.collapsed()
        with open(path, "wt") as f:
            for line in lines:
                f.write(line + "\n")
        return len(lines)

    def self_times(self) -> dict:
        """Samples attributed to each stack's innermost code frame."""
        out: dict = {}
        for key, n in self.counts.items():
            leaf = key[-1] if key else "(unknown)"
            out[leaf] = out.get(leaf, 0) + n
        return out

    def span_times(self) -> dict:
        """Samples attributed to each stack's innermost open span."""
        out: dict = {}
        for key, n in self.counts.items():
            name = "(no span)"
            for part in reversed(key):
                if part.startswith("span:"):
                    name = part[5:]
                    break
            out[name] = out.get(name, 0) + n
        return out

    def render_top(self, k: int = 15) -> str:
        from ..util import format_table

        if not self.samples:
            return ("profile: 0 samples — the workload finished inside "
                    "one interval (or consumed no CPU under the 'prof' "
                    "timer; try --timer real)")

        def table(title: str, counts: dict) -> str:
            rows = sorted(counts.items(), key=lambda kv: -kv[1])[:k]
            body = [[label, n, f"{100.0 * n / self.samples:.1f}%",
                     f"{n * self.interval:.3f}"]
                    for label, n in rows]
            return title + "\n" + format_table(
                ["where", "samples", "share", "~seconds"], body)

        head = (f"profile: {self.samples} samples at "
                f"{self.interval * 1e3:.1f}ms ({self.timer} timer), "
                f"{self.wall_seconds:.2f}s wall")
        return "\n\n".join([head,
                            table("self-time by span", self.span_times()),
                            table("self-time by function",
                                  self.self_times())])


def maybe_profile(path: str | None, interval: float = 0.005,
                  timer: str = "prof"):
    """``with maybe_profile(args.profile): ...`` — a no-op when the
    ``--profile PATH`` flag was not given, else a profiler whose
    collapsed stacks land at ``path`` on exit."""
    from contextlib import nullcontext

    if not path:
        return nullcontext()

    class _Scoped(SamplingProfiler):
        def __exit__(inner, *exc) -> bool:
            SamplingProfiler.__exit__(inner, *exc)
            n = inner.save(path)
            log.info("wrote %s (%d stacks, %d samples; feed to "
                     "flamegraph.pl or speedscope.app)", path, n,
                     inner.samples)
            return False

    return _Scoped(interval=interval, timer=timer)


# ----------------------------------------------------------------------
# CLI: repro profile <command ...>
# ----------------------------------------------------------------------
def _cmd_profile(args) -> int:
    from ..harness.cli import build_parser

    command = [c for c in args.command if c != "--"]
    if not command:
        log.error("profile: give a repro command to run, e.g. "
                  "'repro profile sweep --tier tiny'")
        return 2
    if command[0] == "profile":
        log.error("profile: cannot profile itself")
        return 2
    inner = build_parser().parse_args(command)
    profiler = SamplingProfiler(interval=args.interval, timer=args.timer)
    with profiler:
        rc = inner.func(inner)
    n = profiler.save(args.out)
    print(profiler.render_top(args.top))
    log.info("wrote %s (%d stacks; feed to flamegraph.pl or "
             "speedscope.app)", args.out, n)
    return rc


def add_profile_parser(sub) -> None:
    p = sub.add_parser(
        "profile",
        help="run any repro command under the sampling profiler and "
             "write collapsed (flamegraph) stacks")
    p.add_argument("--out", default="profile.collapsed",
                   help="collapsed-stack output file")
    p.add_argument("--interval", type=float, default=0.005,
                   help="sampling interval in seconds")
    p.add_argument("--timer", default="prof", choices=("prof", "real"),
                   help="prof = CPU time (default), real = wall clock "
                        "(for sleep-dominated workloads)")
    p.add_argument("--top", type=int, default=15,
                   help="rows in the printed self-time tables")
    p.add_argument("command", nargs="...",
                   help="the repro command line to profile")
    p.set_defaults(func=_cmd_profile)
