"""One cache-statistics schema for every cache in the code base.

Before this module each cache invented its own stats dict:
``OrderingCache.stats`` reported ``hits/disk_hits/misses/requests``,
the advisor's LRU caches ``hits/misses/evictions/size/capacity``, and
the memoised reuse statistics only module counters.  Dashboards and
tests had to know three shapes.

Every cache now exposes **at least** :data:`CACHE_STATS_KEYS`::

    hits          satisfied lookups (any storage level)
    misses        lookups that had to compute
    evictions     entries dropped to stay within capacity (0 if unbounded)
    hit_rate      hits / (hits + misses), 0.0 when idle
    size_bytes    best-effort bytes *resident* in the cache (heap-backed)
    mapped_bytes  bytes held as memory-mapped views (disk-backed pages
                  the OS can reclaim; NOT resident heap — see
                  :mod:`repro.storage`)

Caches may add extra keys (``disk_hits``, ``capacity``, ...) but the
shared keys always exist with these meanings —
``tests/obs/test_cachestats.py`` pins the shape for all of them.
"""

from __future__ import annotations

import sys
import threading

__all__ = ["CACHE_STATS_KEYS", "CacheStatCounters", "cache_stats",
           "sizeof_value", "mapped_nbytes"]

#: the keys every cache's ``stats`` mapping must expose.
CACHE_STATS_KEYS = ("hits", "misses", "evictions", "hit_rate",
                    "size_bytes", "mapped_bytes")


def cache_stats(hits: int = 0, misses: int = 0, evictions: int = 0,
                size_bytes: int = 0, mapped_bytes: int = 0,
                **extra) -> dict:
    """Assemble a stats dict in the shared schema (plus extras)."""
    total = hits + misses
    out = {
        "hits": int(hits),
        "misses": int(misses),
        "evictions": int(evictions),
        "hit_rate": hits / total if total else 0.0,
        "size_bytes": int(size_bytes),
        "mapped_bytes": int(mapped_bytes),
    }
    out.update(extra)
    return out


def mapped_nbytes(value) -> int:
    """Bytes of ``value`` that are memory-mapped rather than resident.

    An ``np.memmap`` array (or a view whose base chain ends in one) is
    disk-backed: its pages are reclaimable file cache, not private heap,
    so counting it in ``size_bytes`` would double-bill memory that the
    OS can drop at any time.  Returns ``value.nbytes`` for mapped
    arrays and 0 for everything else.
    """
    import numpy as np

    arr = value
    while isinstance(arr, np.ndarray):
        if isinstance(arr, np.memmap):
            return int(value.nbytes)
        arr = arr.base
    return 0


def sizeof_value(value) -> int:
    """Best-effort resident size of one cached value.

    Prefers NumPy's exact ``nbytes`` (covers permutations, feature
    vectors and statistics arrays); falls back to
    ``sys.getsizeof``.  Containers report the sum over their items
    plus their own overhead.
    """
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(sizeof_value(v) for v in value)
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            sizeof_value(k) + sizeof_value(v) for k, v in value.items())
    # dataclass-ish objects: count their public ndarray attributes
    arrays = [a for a in (getattr(value, f, None)
                          for f in getattr(value, "__dataclass_fields__", ()))
              if getattr(a, "nbytes", None) is not None]
    if arrays:
        return sys.getsizeof(value) + sum(a.nbytes for a in arrays)
    try:
        return sys.getsizeof(value)
    except TypeError:  # pragma: no cover - exotic objects
        return 0


class CacheStatCounters:
    """A thread-safe hit/miss/eviction/bytes bundle.

    Caches embed one of these and surface ``.snapshot()`` (optionally
    with extra keys) as their ``stats``.  ``delta`` and ``merge``
    mirror the registry's shipping protocol so per-worker cache stats
    aggregate the same way counters do.
    """

    __slots__ = ("_hits", "_misses", "_evictions", "_size_bytes", "_lock")

    def __init__(self) -> None:
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._size_bytes = 0
        self._lock = threading.Lock()

    def hit(self, n: int = 1) -> None:
        with self._lock:
            self._hits += n

    def miss(self, n: int = 1) -> None:
        with self._lock:
            self._misses += n

    def evict(self, n: int = 1, freed_bytes: int = 0) -> None:
        with self._lock:
            self._evictions += n
            self._size_bytes = max(0, self._size_bytes - freed_bytes)

    def grow(self, added_bytes: int) -> None:
        with self._lock:
            self._size_bytes += added_bytes

    def set_size_bytes(self, total: int) -> None:
        with self._lock:
            self._size_bytes = int(total)

    def snapshot(self, **extra) -> dict:
        with self._lock:
            return cache_stats(self._hits, self._misses, self._evictions,
                               self._size_bytes, **extra)

    @staticmethod
    def delta(after: dict, before: dict) -> dict:
        """``after - before`` over the countable shared keys."""
        d = {k: after.get(k, 0) - before.get(k, 0)
             for k in ("hits", "misses", "evictions", "size_bytes",
                       "mapped_bytes")}
        return cache_stats(**d)

    @staticmethod
    def merge(into: dict, delta: dict, keys=None) -> dict:
        """Accumulate a delta into a running stats dict (in place)."""
        for k in keys or ("hits", "misses", "evictions", "size_bytes",
                          "mapped_bytes"):
            into[k] = into.get(k, 0) + delta.get(k, 0)
        total = into.get("hits", 0) + into.get("misses", 0)
        into["hit_rate"] = into.get("hits", 0) / total if total else 0.0
        return into
