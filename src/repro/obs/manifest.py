"""Run manifests: who/what/when for every sweep or bench artifact.

A ``sweep_metrics.json`` or ``trace.json`` without provenance is a
number without units: six months later nobody knows which git SHA,
seed, or corpus produced it.  :func:`collect` gathers

* a **run id** (timestamp + pid + random suffix, unique per run),
* the **git SHA** of the working tree (plus a dirty flag) when the
  package lives inside a git checkout,
* the **seed** and the sweep's **corpus signature** (the same
  signature dict the journal header carries, so a manifest can be
  matched to its journal),
* the caller's **config** (CLI arguments or engine parameters),
* **package versions** (numpy/scipy and repro itself), the Python
  version and the platform string,

and :meth:`RunManifest.write` drops it as ``run_manifest.json`` next
to the artifact.  Everything is best-effort and exception-free: a
missing git binary or an unusual install simply leaves fields null —
a manifest must never be the reason a sweep fails.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import uuid
from dataclasses import asdict, dataclass, field

__all__ = ["RunManifest", "collect", "MANIFEST_VERSION",
           "REQUIRED_FIELDS"]

MANIFEST_VERSION = 1

#: fields ``repro report --check`` requires in a valid manifest.
REQUIRED_FIELDS = ("version", "run_id", "created_unix", "python",
                   "platform", "packages", "config")


@dataclass
class RunManifest:
    """The provenance record written next to every run artifact."""

    run_id: str
    created_unix: float
    created: str                       # ISO-8601 UTC
    python: str
    platform: str
    argv: list = field(default_factory=list)
    git_sha: str | None = None
    git_dirty: bool | None = None
    seed: object = None
    signature: dict | None = None      # sweep corpus signature
    config: dict = field(default_factory=dict)
    packages: dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: str) -> str:
        with open(path, "wt") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    @staticmethod
    def load(path: str) -> "RunManifest":
        with open(path, "rt") as f:
            data = json.load(f)
        known = {f.name for f in
                 RunManifest.__dataclass_fields__.values()}  # type: ignore
        return RunManifest(**{k: v for k, v in data.items() if k in known})

    @staticmethod
    def validate(data: dict) -> list:
        """Problems with a manifest dict; empty means valid."""
        problems = []
        for key in REQUIRED_FIELDS:
            if key not in data:
                problems.append(f"manifest: missing required field {key!r}")
        if data.get("version", MANIFEST_VERSION) > MANIFEST_VERSION:
            problems.append(
                f"manifest: version {data['version']} is newer than this "
                f"reader ({MANIFEST_VERSION})")
        return problems


def _git_state() -> tuple:
    """(sha, dirty) of the repo containing this package, else (None,
    None).  Never raises."""
    root = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, timeout=5,
            capture_output=True, text=True)
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=root, timeout=5,
            capture_output=True, text=True)
        dirty = bool(status.stdout.strip()) if status.returncode == 0 \
            else None
        return sha.stdout.strip(), dirty
    except Exception:
        return None, None


def _package_versions() -> dict:
    versions = {}
    for name in ("numpy", "scipy"):
        try:
            versions[name] = __import__(name).__version__
        except Exception:
            versions[name] = None
    try:
        from importlib.metadata import version
        versions["repro"] = version("repro-order-to-sparsity")
    except Exception:
        versions["repro"] = None
    return versions


def collect(seed=None, signature: dict | None = None,
            config: dict | None = None, run_id: str | None = None,
            argv: list | None = None) -> RunManifest:
    """Gather the manifest for the current process/run.

    ``signature`` is the sweep signature dict (corpus, architectures,
    orderings, kernels, seed) when the artifact belongs to a sweep;
    ``config`` holds whatever knobs produced the artifact.
    """
    now = time.time()
    if run_id is None:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
        run_id = f"{stamp}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    sha, dirty = _git_state()
    return RunManifest(
        run_id=run_id,
        created_unix=now,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        python=platform.python_version(),
        platform=platform.platform(),
        argv=list(sys.argv if argv is None else argv),
        git_sha=sha, git_dirty=dirty,
        seed=seed if isinstance(seed, (int, float, str, type(None)))
        else repr(seed),
        signature=signature,
        config=dict(config or {}),
        packages=_package_versions(),
    )
