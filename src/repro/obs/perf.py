"""repro.obs.perf — the benchmark ledger and regression gates.

The paper's argument rests on careful performance measurement, and so
does every ROADMAP "measurable win" claim — but claims rot silently
without history.  This module closes the loop:

* :func:`metric` / :func:`bench_record` — one **BenchRecord** schema
  for every benchmark artifact: bench name, tier, seed, git SHA,
  corpus/run signature, and a metric dict where each metric carries
  its unit, its *polarity* (higher- or lower-is-better), its raw
  min-of-k ``samples`` and an optional per-metric tolerance band.
* :class:`BenchLedger` — an append-only per-tier JSON history
  (``BENCH_<tier>.json``) the benches and ``repro perf record`` write
  through; appends are atomic (tmp + rename), so a killed run never
  tears the history.
* :func:`compare_records` / :func:`compare_ledgers` — noise-aware
  baseline comparison: per-metric *worse-direction* ratios over the
  min-of-k values, tolerance bands per metric kind (**time** metrics
  default to a ±15 % band; **exact** metrics — counts, deterministic
  domain geomeans — default to 0), and a geomean ratio across all
  compared metrics.  Any metric outside its band is a regression and
  ``repro perf compare`` exits non-zero, which is the CI gate.
* ``repro perf record`` — runs small built-in deterministic
  benchmarks (an inline tiny sweep, a model-evaluation pass) k times
  and appends one BenchRecord each; ``repro perf trend`` renders the
  history.

Metric kinds
------------
``time``   unit in {s, seconds, ms} — noisy, compared within a band.
``exact``  everything else (counts, ratios, geomeans) — deterministic
           given the same code and seed, compared exactly by default;
           a drift here is a behaviour change, not noise.
"""

from __future__ import annotations

import json
import math
import os
import time

from .log import get_logger

__all__ = ["metric", "bench_record", "BenchLedger", "compare_records",
           "compare_ledgers", "render_comparison", "render_trend",
           "BUILTIN_BENCHES", "run_builtin_bench", "add_perf_parser",
           "DEFAULT_TIME_TOLERANCE"]

log = get_logger("perf")

LEDGER_VERSION = 1

#: units treated as wall-clock (noisy) measurements
TIME_UNITS = frozenset({"s", "sec", "seconds", "ms", "milliseconds"})

#: default tolerance band for time metrics (fraction of the baseline);
#: exact metrics default to 0 — any worse-direction drift is flagged
DEFAULT_TIME_TOLERANCE = 0.15


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def metric_kind(unit: str) -> str:
    return "time" if unit in TIME_UNITS else "exact"


def metric(value: float | None = None, samples=None, unit: str = "",
           polarity: str = "lower", tolerance: float | None = None) -> dict:
    """One BenchRecord metric.

    ``samples`` holds the raw repeated measurements; ``value`` defaults
    to the best of them under ``polarity`` (min for lower-is-better,
    max for higher) — the min-of-k convention that suppresses
    scheduling noise without averaging it into the signal.
    """
    if polarity not in ("lower", "higher"):
        raise ValueError(f"polarity must be 'lower' or 'higher', "
                         f"got {polarity!r}")
    samples = [float(s) for s in (samples or [])]
    if value is None:
        if not samples:
            raise ValueError("metric needs a value or samples")
        value = min(samples) if polarity == "lower" else max(samples)
    out = {"value": float(value), "unit": unit, "polarity": polarity,
           "kind": metric_kind(unit)}
    if samples:
        out["samples"] = samples
    if tolerance is not None:
        out["tolerance"] = float(tolerance)
    return out


def bench_record(name: str, tier: str, seed, metrics: dict,
                 signature=None, context: dict | None = None) -> dict:
    """Assemble one BenchRecord with provenance (git SHA, timestamp)."""
    from .manifest import _git_state

    sha, dirty = _git_state()
    return {
        "name": name, "tier": tier, "seed": seed,
        "git_sha": sha, "git_dirty": dirty,
        "signature": signature,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": dict(metrics),
        "context": dict(context or {}),
    }


class BenchLedger:
    """Append-only JSON history of BenchRecords for one tier."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def load(self) -> dict:
        if not os.path.exists(self.path):
            return {"version": LEDGER_VERSION, "records": []}
        with open(self.path, "rt") as f:
            doc = json.load(f)
        if not isinstance(doc, dict) or \
                not isinstance(doc.get("records"), list):
            raise ValueError(f"{self.path}: not a bench ledger "
                             "(expected an object with a 'records' list)")
        return doc

    def records(self, name: str | None = None) -> list:
        recs = self.load()["records"]
        if name is not None:
            recs = [r for r in recs if r.get("name") == name]
        return recs

    def latest(self) -> dict:
        """The most recent record per bench name."""
        out: dict = {}
        for rec in self.load()["records"]:
            out[rec.get("name")] = rec
        return out

    def append(self, record: dict) -> None:
        """Append one record atomically (tmp file + rename)."""
        doc = self.load()
        doc["version"] = LEDGER_VERSION
        doc["records"].append(record)
        tmp = self.path + ".tmp"
        with open(tmp, "wt") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, self.path)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _worse_ratio(base: float, cur: float, polarity: str) -> float:
    """> 1 means the current value is worse than the baseline."""
    num, den = (cur, base) if polarity == "lower" else (base, cur)
    if den == 0:
        return 1.0 if num == 0 else math.inf
    return num / den


def compare_records(current: dict, baseline: dict,
                    time_tolerance: float | None = None,
                    kinds=("time", "exact")) -> dict:
    """Compare two BenchRecords of the same bench, metric by metric.

    Returns ``{"rows": [...], "regressions": [...], "missing": [...]}``
    where each row carries the worse-direction ratio and its band.
    """
    if time_tolerance is None:
        time_tolerance = DEFAULT_TIME_TOLERANCE
    rows, regressions, missing = [], [], []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for mname, base in sorted(base_metrics.items()):
        kind = base.get("kind", metric_kind(base.get("unit", "")))
        if kind not in kinds:
            continue
        cur = cur_metrics.get(mname)
        if cur is None:
            missing.append(mname)
            continue
        polarity = cur.get("polarity", base.get("polarity", "lower"))
        tol = cur.get("tolerance", base.get("tolerance"))
        if tol is None:
            tol = time_tolerance if kind == "time" else 0.0
        ratio = _worse_ratio(float(base["value"]), float(cur["value"]),
                             polarity)
        regressed = ratio > 1.0 + tol + 1e-12
        row = {"metric": mname, "kind": kind, "unit": cur.get("unit", ""),
               "polarity": polarity, "base": float(base["value"]),
               "current": float(cur["value"]),
               "ratio": ratio, "tolerance": tol, "regressed": regressed}
        rows.append(row)
        if regressed:
            regressions.append(row)
    return {"rows": rows, "regressions": regressions, "missing": missing}


def _geomean(ratios) -> float:
    finite = [r for r in ratios if 0 < r < math.inf]
    if not finite:
        return 1.0 if not ratios else math.inf
    return math.exp(sum(math.log(r) for r in finite) / len(finite))


def compare_ledgers(current: "BenchLedger", baseline: "BenchLedger",
                    benches=None, time_tolerance: float | None = None,
                    kinds=("time", "exact")) -> dict:
    """Compare the latest record per bench across two ledgers."""
    cur_latest = current.latest()
    base_latest = baseline.latest()
    names = sorted(benches if benches else base_latest)
    report = {"benches": {}, "regressions": [], "missing_benches": [],
              "geomean_ratio": 1.0}
    all_ratios: list = []
    for name in names:
        base = base_latest.get(name)
        cur = cur_latest.get(name)
        if base is None or cur is None:
            report["missing_benches"].append(name)
            continue
        cmp = compare_records(cur, base, time_tolerance=time_tolerance,
                              kinds=kinds)
        report["benches"][name] = cmp
        all_ratios.extend(row["ratio"] for row in cmp["rows"])
        report["regressions"].extend(
            dict(row, bench=name) for row in cmp["regressions"])
    report["geomean_ratio"] = _geomean(all_ratios)
    return report


def render_comparison(report: dict) -> str:
    from ..util import format_table

    rows = []
    for bench, cmp in sorted(report["benches"].items()):
        for row in cmp["rows"]:
            flag = "REGRESSED" if row["regressed"] else (
                "improved" if row["ratio"] < 1.0 - row["tolerance"] - 1e-12
                else "ok")
            rows.append([bench, row["metric"], row["kind"],
                         f"{row['base']:.6g}", f"{row['current']:.6g}",
                         "inf" if row["ratio"] == math.inf
                         else f"{row['ratio']:.4f}",
                         f"±{row['tolerance']:.0%}", flag])
    lines = ["perf comparison (ratio > 1 means worse)"]
    if rows:
        lines.append(format_table(
            ["bench", "metric", "kind", "baseline", "current", "ratio",
             "band", ""], rows))
    geo = report["geomean_ratio"]
    lines.append(f"geomean worse-ratio over {len(rows)} metric(s): "
                 + ("inf" if geo == math.inf else f"{geo:.4f}"))
    if report["missing_benches"]:
        lines.append("missing bench(es): "
                     + ", ".join(report["missing_benches"]))
    n = len(report["regressions"])
    lines.append(f"{n} regression(s)" if n else
                 "no regressions: every metric within its band")
    return "\n".join(lines)


def render_trend(ledger: "BenchLedger", bench: str | None = None,
                 metric_name: str | None = None) -> str:
    from ..util import format_table

    rows = []
    for rec in ledger.records(bench):
        sha = (rec.get("git_sha") or "?")[:10]
        for mname, m in sorted(rec.get("metrics", {}).items()):
            if metric_name and mname != metric_name:
                continue
            rows.append([rec.get("created", "?"), rec.get("name"),
                         mname, f"{m['value']:.6g}", m.get("unit", ""),
                         len(m.get("samples", [])) or 1, sha])
    if not rows:
        return "perf trend: no matching records"
    return ("perf trend (oldest first)\n"
            + format_table(["created", "bench", "metric", "value",
                            "unit", "k", "git"], rows))


# ----------------------------------------------------------------------
# built-in benches for `repro perf record`
# ----------------------------------------------------------------------
def _builtin_sweep(tier: str, seed: int, limit: int = 3) -> tuple:
    """One inline tiny sweep; wall + stage times and exact counts."""
    from ..generators import build_corpus
    from ..harness.engine import SweepEngine
    from ..harness.runner import OrderingCache
    from ..machine import get_architecture

    corpus = build_corpus(tier, seed=seed)[:limit]
    engine = SweepEngine(corpus, [get_architecture("Rome")],
                         ["RCM", "Gray"], cache=OrderingCache(),
                         seed=seed)
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    values = {
        "wall_seconds": wall,
        "reorder_seconds": engine.metrics.stages["reorder"],
        "model_eval_seconds": engine.metrics.stages["model_eval"],
        "cells_completed": engine.metrics.cells["completed"],
        "cells_failed": len(result.failed),
    }
    meta = {
        "wall_seconds": {"unit": "s", "polarity": "lower"},
        "reorder_seconds": {"unit": "s", "polarity": "lower"},
        "model_eval_seconds": {"unit": "s", "polarity": "lower"},
        "cells_completed": {"unit": "cells", "polarity": "higher"},
        "cells_failed": {"unit": "cells", "polarity": "lower"},
    }
    return values, meta


def _builtin_model_eval(tier: str, seed: int) -> tuple:
    """Model evaluation over every architecture on one matrix."""
    from ..generators import build_corpus
    from ..machine import architecture_names, get_architecture
    from ..machine.bench import simulate_measurement
    from ..machine.model import PerfModel

    entry = build_corpus(tier, seed=seed)[0]
    t0 = time.perf_counter()
    total = 0.0
    cells = 0
    for arch_name in architecture_names():
        arch = get_architecture(arch_name)
        model = PerfModel(arch)
        for kernel in ("1d", "2d"):
            rec = simulate_measurement(entry.matrix, arch, kernel,
                                       entry.name, "original",
                                       model=model)
            total += rec.seconds
            cells += 1
    wall = time.perf_counter() - t0
    values = {"wall_seconds": wall, "predictions": cells,
              "predicted_total_seconds": total}
    meta = {
        "wall_seconds": {"unit": "s", "polarity": "lower"},
        "predictions": {"unit": "cells", "polarity": "higher"},
        # deterministic model output: any drift is a behaviour change
        "predicted_total_seconds": {"unit": "model-s",
                                    "polarity": "lower"},
    }
    return values, meta


BUILTIN_BENCHES = {
    "sweep": _builtin_sweep,
    "model_eval": _builtin_model_eval,
}


def run_builtin_bench(name: str, tier: str = "tiny", seed: int = 0,
                      k: int = 3, slowdown: float = 1.0) -> dict:
    """Run one built-in bench ``k`` times and assemble its BenchRecord.

    ``slowdown`` > 1 busy-waits after each repetition in proportion to
    its measured time — a *seeded synthetic regression* knob the CI
    gate uses to prove ``perf compare`` actually catches slowdowns.
    """
    fn = BUILTIN_BENCHES.get(name)
    if fn is None:
        raise ValueError(f"unknown builtin bench {name!r} "
                         f"(have: {', '.join(sorted(BUILTIN_BENCHES))})")
    samples: dict = {}
    meta: dict = {}
    for _ in range(max(1, k)):
        t0 = time.perf_counter()
        values, meta = fn(tier, seed)
        elapsed = time.perf_counter() - t0
        if slowdown > 1.0:
            deadline = t0 + elapsed * slowdown
            while time.perf_counter() < deadline:
                pass
            stretch = (time.perf_counter() - t0) / max(elapsed, 1e-12)
            for mname, m in meta.items():
                if metric_kind(m["unit"]) == "time":
                    values[mname] *= stretch
        for mname, value in values.items():
            samples.setdefault(mname, []).append(float(value))
    metrics = {}
    for mname, m in meta.items():
        kind = metric_kind(m["unit"])
        vals = samples[mname]
        if kind == "exact" and len(set(vals)) != 1:
            raise RuntimeError(
                f"builtin bench {name!r}: exact metric {mname!r} is not "
                f"stable across repetitions: {vals}")
        metrics[mname] = metric(samples=vals, unit=m["unit"],
                                polarity=m["polarity"],
                                tolerance=m.get("tolerance"))
    return bench_record(name=name, tier=tier, seed=seed, metrics=metrics,
                        context={"k": k, "builtin": True,
                                 "slowdown": slowdown})


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _cmd_perf_record(args) -> int:
    ledger = BenchLedger(args.ledger)
    names = (args.bench.split(",") if args.bench
             else sorted(BUILTIN_BENCHES))
    for name in names:
        rec = run_builtin_bench(name.strip(), tier=args.tier,
                                seed=args.seed, k=args.k,
                                slowdown=args.slowdown)
        ledger.append(rec)
        log.info("recorded %s (%d metric(s), k=%d) to %s", name,
                 len(rec["metrics"]), args.k, args.ledger)
    print(render_trend(ledger))
    return 0


def _cmd_perf_compare(args) -> int:
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = [k for k in kinds if k not in ("time", "exact")]
    if unknown:
        log.error("unknown metric kind(s) %s; valid: time, exact",
                  unknown)
        return 2
    benches = (args.bench.split(",") if args.bench else None)
    report = compare_ledgers(
        BenchLedger(args.ledger), BenchLedger(args.baseline),
        benches=benches, time_tolerance=args.time_tolerance,
        kinds=kinds)
    print(render_comparison(report))
    return 1 if report["regressions"] else 0


def _cmd_perf_trend(args) -> int:
    print(render_trend(BenchLedger(args.ledger),
                       bench=args.bench or None,
                       metric_name=args.metric or None))
    return 0


def _cmd_perf_merge_trace(args) -> int:
    from .report import merge_traces

    n = merge_traces(args.traces, args.out)
    log.info("wrote %s (%d events from %d trace(s); load in "
             "https://ui.perfetto.dev)", args.out, n, len(args.traces))
    return 0


def add_perf_parser(sub) -> None:
    """Attach the ``perf`` subcommand tree to the main CLI."""
    p = sub.add_parser(
        "perf",
        help="benchmark ledger: record/compare/trend performance "
             "history with regression gates")
    psub = p.add_subparsers(dest="perf_command", required=True)

    r = psub.add_parser("record",
                        help="run the built-in benches k times and "
                             "append BenchRecords to a ledger")
    r.add_argument("--ledger", required=True,
                   help="BENCH_<tier>.json history file")
    r.add_argument("--bench", default="",
                   help="comma-separated builtin benches (default: "
                        + ", ".join(sorted(BUILTIN_BENCHES)) + ")")
    r.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("-k", type=int, default=3,
                   help="repetitions per bench (min-of-k)")
    r.add_argument("--slowdown", type=float, default=1.0,
                   help="synthetic slowdown factor for gate self-tests "
                        "(busy-waits to stretch time metrics)")
    r.set_defaults(func=_cmd_perf_record)

    c = psub.add_parser("compare",
                        help="compare a ledger against a baseline; "
                             "exit non-zero on any regression")
    c.add_argument("--ledger", required=True,
                   help="the current ledger (latest record per bench)")
    c.add_argument("--baseline", required=True,
                   help="the baseline ledger to compare against")
    c.add_argument("--bench", default="",
                   help="comma-separated bench subset")
    c.add_argument("--kinds", default="time,exact",
                   help="metric kinds to gate on (time, exact); use "
                        "'exact' alone when comparing across machines")
    c.add_argument("--time-tolerance", type=float, default=None,
                   help="tolerance band for time metrics "
                        f"(default {DEFAULT_TIME_TOLERANCE})")
    c.set_defaults(func=_cmd_perf_compare)

    t = psub.add_parser("trend", help="render a ledger's history")
    t.add_argument("--ledger", required=True)
    t.add_argument("--bench", default="")
    t.add_argument("--metric", default="")
    t.set_defaults(func=_cmd_perf_trend)

    m = psub.add_parser("merge-trace",
                        help="merge per-process Chrome traces (server "
                             "+ loadgen) into one correlated timeline")
    m.add_argument("traces", nargs="+",
                   help="trace .json/.jsonl files to merge")
    m.add_argument("--out", default="merged_trace.json")
    m.set_defaults(func=_cmd_perf_merge_trace)
