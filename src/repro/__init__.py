"""repro — reproduction of "Bringing Order to Sparsity: A Sparse Matrix
Reordering Study on Multicore CPUs" (SC '23).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.matrix` — CSR/COO containers, Matrix Market I/O
* :mod:`repro.graph` — graph & hypergraph views of sparse matrices
* :mod:`repro.generators` — the synthetic evaluation corpus
* :mod:`repro.partition` / :mod:`repro.hpartition` — multilevel
  (hyper)graph partitioners
* :mod:`repro.reorder` — the six orderings (RCM, AMD, ND, GP, HP, Gray)
* :mod:`repro.spmv` — the 1D and 2D CSR SpMV kernels
* :mod:`repro.machine` — Table 2 architectures + performance model
* :mod:`repro.features` — order-sensitive matrix features
* :mod:`repro.cholesky` — symbolic fill analysis
* :mod:`repro.analysis` — geomeans, boxplots, performance profiles
* :mod:`repro.harness` — experiment drivers for every table and figure
* :mod:`repro.advisor` — feature-driven reordering selection service
"""

__version__ = "1.0.0"

from .matrix import CSRMatrix, COOMatrix, read_matrix_market
from .reorder import ALL_ORDERINGS, compute_ordering
from .machine import TABLE2, PerfModel, get_architecture
from .spmv import spmv, schedule_1d, schedule_2d
from .generators import build_corpus, named_matrix
from .advisor import Advisor, AdvisorModel, train_advisor

__all__ = [
    "__version__",
    "CSRMatrix",
    "COOMatrix",
    "read_matrix_market",
    "ALL_ORDERINGS",
    "compute_ordering",
    "TABLE2",
    "PerfModel",
    "get_architecture",
    "spmv",
    "schedule_1d",
    "schedule_2d",
    "build_corpus",
    "named_matrix",
    "Advisor",
    "AdvisorModel",
    "train_advisor",
]
