#!/usr/bin/env python3
"""Reorder a Matrix Market file from the command line.

Usage:
    python examples/matrix_market_tool.py INPUT.mtx ORDERING [OUTPUT.mtx]

ORDERING is one of RCM, AMD, ND, GP, HP, Gray.  Prints the §3.2 feature
changes; with OUTPUT.mtx given, writes the reordered matrix.  With no
arguments, demonstrates on a generated file in a temp directory.
"""

import sys
import tempfile
from pathlib import Path

from repro.features import bandwidth, offdiagonal_nonzeros, profile
from repro.matrix import read_matrix_market, write_matrix_market
from repro.reorder import compute_ordering
from repro.util import format_table


def reorder_file(inp: str, ordering_name: str, out: str | None) -> None:
    a = read_matrix_market(inp)
    print(f"read {inp}: {a.nrows} x {a.ncols}, nnz={a.nnz}")
    ordering = compute_ordering(a, ordering_name, nparts=64)
    b = ordering.apply(a)
    rows = [
        ["bandwidth", bandwidth(a), bandwidth(b)],
        ["profile", profile(a), profile(b)],
        ["offdiag (64 blocks)", offdiagonal_nonzeros(a, 64),
         offdiagonal_nonzeros(b, 64)],
    ]
    print(format_table(["feature", "before", f"after {ordering_name}"],
                       rows))
    print(f"reordering took {ordering.seconds:.3f}s "
          f"({'symmetric' if ordering.symmetric else 'rows only'})")
    if out:
        write_matrix_market(b, out)
        print(f"wrote {out}")


def demo() -> None:
    """Self-contained demo: generate, write, reorder, verify."""
    from repro.generators import fem_mesh_2d

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "demo.mtx"
        write_matrix_market(fem_mesh_2d(800, seed=4, scrambled=True), path)
        reorder_file(str(path), "RCM", str(Path(tmp) / "demo_rcm.mtx"))
        back = read_matrix_market(Path(tmp) / "demo_rcm.mtx")
        print(f"round-trip check: re-read nnz={back.nnz}")


if __name__ == "__main__":
    if len(sys.argv) >= 3:
        reorder_file(sys.argv[1], sys.argv[2],
                     sys.argv[3] if len(sys.argv) > 3 else None)
    else:
        print("no arguments given - running the built-in demo\n")
        demo()
