#!/usr/bin/env python3
"""Choosing a reordering for *your* workload — the paper's §4.7 advice.

The study's practical guidance: a reordering pays off only when the
SpMV-iteration savings amortise the reordering cost.  This example
walks several realistic workloads (iterative solver, one-shot graph
analytics, repeated simulation) through that decision:

1. measure the actual reordering cost of each algorithm,
2. model the SpMV speedup on the target machine,
3. compute the break-even iteration count (§4.7's formula),
4. recommend an ordering given the workload's iteration budget.

Run:  python examples/choose_ordering.py
"""

from repro.generators import kkt_matrix, powerlaw_graph, road_network
from repro.harness.experiments import amortization_iterations
from repro.machine import PerfModel, get_architecture
from repro.reorder import compute_ordering
from repro.spmv import schedule_1d
from repro.util import format_table

WORKLOADS = [
    # (description, matrix builder, SpMV iterations the app will run)
    ("CG solver on a KKT system (10k iterations)",
     lambda: kkt_matrix(4000, seed=1, scrambled=True), 10_000),
    ("one-shot PageRank-ish sweep on a web graph (50 iterations)",
     lambda: powerlaw_graph(3000, m=5, clusters=40, seed=2), 50),
    ("transient simulation on a road network (1M iterations)",
     lambda: road_network(3600, seed=3), 1_000_000),
]

CANDIDATES = ("RCM", "AMD", "ND", "GP", "HP", "Gray")


def main() -> None:
    arch = get_architecture("Ice Lake")
    model = PerfModel(arch)
    for description, build, budget in WORKLOADS:
        a = build()
        base = model.predict(a, schedule_1d(a, arch.threads))
        print(f"\n== {description} ==")
        print(f"   matrix {a.nrows} rows / {a.nnz} nnz on {arch.name}; "
              f"baseline {base.gflops:.1f} Gflop/s (modelled)")
        rows = []
        best = ("keep original order", 0.0)
        for name in CANDIDATES:
            ordering = compute_ordering(a, name, nparts=arch.gp_parts)
            b = ordering.apply(a)
            pred = model.predict(b, schedule_1d(b, arch.threads))
            speedup = pred.gflops / base.gflops
            break_even = amortization_iterations(
                ordering.seconds, base.seconds, speedup)
            pays_off = break_even <= budget
            if pays_off:
                # net time saved over the whole workload
                saved = (budget * base.seconds * (1 - 1 / speedup)
                         - ordering.seconds)
                if saved > best[1]:
                    best = (name, saved)
            rows.append([
                name, f"{speedup:.2f}x", f"{ordering.seconds:.2f}s",
                ("never" if break_even == float("inf")
                 else f"{break_even:,.0f}"),
                "yes" if pays_off else "no",
            ])
        print(format_table(
            ["ordering", "speedup", "reorder cost", "break-even iters",
             f"pays off at {budget:,}?"], rows))
        print(f"   recommendation: {best[0]}"
              + (f" (saves {best[1]:.2f}s net)" if best[1] else ""))


if __name__ == "__main__":
    main()
