#!/usr/bin/env python3
"""Quickstart: reorder one matrix with all six algorithms and compare.

Generates a scrambled finite-element matrix (a typical SuiteSparse-like
input), applies RCM / AMD / ND / GP / HP / Gray, and reports for every
ordering the §3.2 matrix features plus the modelled SpMV performance of
the 1D and 2D kernels on the 128-core AMD Milan B machine.

Run:  python examples/quickstart.py
"""

from repro.features import bandwidth, imbalance_factor_1d, offdiagonal_nonzeros, profile
from repro.generators import fem_mesh_2d
from repro.machine import PerfModel, get_architecture
from repro.reorder import ALL_ORDERINGS, compute_ordering
from repro.spmv import schedule_1d, schedule_2d
from repro.util import format_table


def main() -> None:
    # a mesh matrix whose native order was destroyed (hash order, etc.)
    a = fem_mesh_2d(2000, seed=7, scrambled=True)
    arch = get_architecture("Milan B")
    model = PerfModel(arch)
    print(f"matrix: {a.nrows} x {a.ncols}, {a.nnz} nonzeros; "
          f"machine: {arch.name} ({arch.cores} cores)\n")

    rows = []
    base_1d = base_2d = None
    for name in ALL_ORDERINGS:
        ordering = compute_ordering(a, name, nparts=arch.gp_parts)
        b = ordering.apply(a)
        g1 = model.predict(b, schedule_1d(b, arch.threads)).gflops
        g2 = model.predict(b, schedule_2d(b, arch.threads)).gflops
        if name == "original":
            base_1d, base_2d = g1, g2
        rows.append([
            name,
            bandwidth(b),
            profile(b),
            offdiagonal_nonzeros(b, arch.threads),
            f"{imbalance_factor_1d(b, arch.threads):.2f}",
            f"{g1 / base_1d:.2f}x",
            f"{g2 / base_2d:.2f}x",
            f"{ordering.seconds:.2f}s",
        ])
    print(format_table(
        ["ordering", "bandwidth", "profile", "offdiag", "imb(1D)",
         "speedup 1D", "speedup 2D", "reorder time"],
        rows))
    print("\nReading guide: GP/HP cluster nonzeros into diagonal blocks "
          "(low offdiag) and win; RCM narrows the band; Gray only "
          "permutes rows and typically loses (paper Fig. 2).")


if __name__ == "__main__":
    main()
