#!/usr/bin/env python3
"""Export measurement data in the paper's artifact format.

The original study publishes its raw data as plain-text tables (one
file per kernel and machine, 54 columns per row — Zenodo
10.5281/zenodo.7821491).  This example runs the reproduction's sweep on
the tiny corpus and two machines and writes files in exactly that
layout, then audits one figure the way the paper's appendix describes:
Figure 1's speedups recomputed from the raw columns.

Run:  python examples/export_artifact.py [output_dir]
"""

import sys
from pathlib import Path

from repro.generators import build_corpus
from repro.harness import (
    OrderingCache,
    export_all_artifacts,
    read_artifact_file,
    run_sweep,
)
from repro.harness.artifact import speedups_from_artifact
from repro.harness.experiments import REORDERINGS
from repro.machine import get_architecture


def main(out_dir: str) -> None:
    corpus = build_corpus("tiny", seed=0)
    archs = [get_architecture(n) for n in ("Milan B", "Ice Lake")]
    print(f"sweeping {len(corpus)} matrices on "
          f"{', '.join(a.name for a in archs)} ...")
    sweep = run_sweep(corpus, archs, list(REORDERINGS),
                      cache=OrderingCache())
    paths = export_all_artifacts(sweep, corpus, archs, out_dir)
    for p in paths:
        print(f"wrote {p}")

    # audit: recompute GP speedups from the raw file, appendix-style
    rows = read_artifact_file(paths[0])
    gp = speedups_from_artifact(rows, "GP")
    print(f"\naudit of {Path(paths[0]).name}: GP 1D speedups "
          f"min={gp.min():.2f} median={sorted(gp)[len(gp)//2]:.2f} "
          f"max={gp.max():.2f} over {len(gp)} matrices")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifact_export")
