#!/usr/bin/env python3
"""A miniature end-to-end rerun of the paper's main experiment.

Builds the tiny corpus, sweeps all six orderings over two machines and
both SpMV kernels, and prints the Figure 2 boxplots and Table 3/4
geometric means — the same outputs the full benchmark harness produces
from the 'small' corpus, in under a minute.

Run:  python examples/mini_study.py
"""

from repro.generators import build_corpus
from repro.harness import (
    OrderingCache,
    experiment_speedups,
    render_boxplot_figure,
    render_geomean_table,
    run_sweep,
    two_d_vs_one_d,
)
from repro.harness.experiments import REORDERINGS
from repro.harness.report import render_two_d_vs_one_d
from repro.machine import get_architecture

ARCHS = ("Rome", "Milan B")


def main() -> None:
    corpus = build_corpus("tiny", seed=0)
    print(f"corpus: {len(corpus)} matrices, "
          f"{sum(e.nnz for e in corpus):,} total nonzeros")
    archs = [get_architecture(n) for n in ARCHS]
    sweep = run_sweep(corpus, archs, list(REORDERINGS),
                      cache=OrderingCache())

    for kernel, table_no, fig_no in (("1d", 3, 2), ("2d", 4, 3)):
        study = experiment_speedups(sweep, list(ARCHS), kernel)
        print()
        print(render_geomean_table(
            study, list(ARCHS),
            f"Table {table_no}: geometric-mean speedup ({kernel.upper()} "
            "kernel)"))
        print()
        print(render_boxplot_figure(
            study, list(ARCHS),
            f"Figure {fig_no}: speedup distribution ({kernel.upper()})"))

    print()
    for arch in ARCHS:
        print(render_two_d_vs_one_d(two_d_vs_one_d(sweep, arch), arch))


if __name__ == "__main__":
    main()
