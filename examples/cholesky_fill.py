#!/usr/bin/env python3
"""Fill-reducing orderings for sparse Cholesky (paper §4.6 / Figure 6).

Direct solvers care about a different objective than SpMV: the number
of nonzeros the factor L gains over A.  This example reproduces the
§4.6 comparison on a few SPD matrices: AMD and ND should produce the
least fill, RCM/GP/HP less but usually still better than the original
order, and Gray is excluded because a row-only permutation cannot
precondition a symmetric factorisation.

Run:  python examples/cholesky_fill.py
"""

from repro.cholesky import cholesky_nnz, elimination_tree, fill_ratio
from repro.generators import fem_mesh_2d, stencil_2d, stencil_3d
from repro.reorder import compute_ordering
from repro.util import format_table

MATRICES = [
    ("2D stencil 32x32 (scrambled)",
     lambda: stencil_2d(32, seed=0, scrambled=True)),
    ("3D stencil 10^3 (scrambled)",
     lambda: stencil_3d(10, seed=1, scrambled=True)),
    ("FE mesh, 1500 nodes", lambda: fem_mesh_2d(1500, seed=2,
                                                scrambled=True)),
]

ORDERINGS = ("RCM", "AMD", "ND", "GP", "HP")


def main() -> None:
    for description, build in MATRICES:
        a = build()
        print(f"\n== {description}: n={a.nrows}, nnz(A)={a.nnz} ==")
        rows = [["original", f"{fill_ratio(a):.2f}", "-"]]
        base = fill_ratio(a)
        for name in ORDERINGS:
            ordering = compute_ordering(a, name, nparts=64)
            ratio = fill_ratio(a, ordering)
            rows.append([name, f"{ratio:.2f}",
                         f"{(1 - ratio / base) * 100:+.0f}%"])
        print(format_table(["ordering", "nnz(L)/nnz(A)",
                            "fill vs original"], rows))

    # bonus: elimination-tree shape under the best ordering
    a = stencil_2d(16, seed=3, scrambled=True)
    nd = compute_ordering(a, "ND")
    b = nd.apply(a).pattern_only()
    parent = elimination_tree(b)
    depth = 0
    for j in range(b.nrows):
        d, k = 0, j
        while parent[k] != -1:
            k = int(parent[k])
            d += 1
        depth = max(depth, d)
    print(f"\nND elimination tree: height {depth} over {b.nrows} "
          f"columns, nnz(L)={cholesky_nnz(b)} — short, bushy trees "
          "are what make ND factorisations parallelise well.")


if __name__ == "__main__":
    main()
