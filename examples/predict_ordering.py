#!/usr/bin/env python3
"""Predicting the best reordering from matrix features (paper §6).

The paper's future-work list ends with "use machine learning to predict
the most effective reordering algorithm".  This example does exactly
that with the library's two predictors:

1. the rule model distilled from the paper's findings (zero training),
2. a nearest-centroid model *trained on an actual sweep* of the
   corpus, evaluated on held-out matrices.

Run:  python examples/predict_ordering.py
"""

import numpy as np

from repro.analysis import (
    NearestCentroidPredictor,
    extract_features,
    recommend_ordering,
)
from repro.generators import build_corpus
from repro.harness import OrderingCache, run_sweep
from repro.harness.experiments import REORDERINGS
from repro.machine import get_architecture
from repro.util import format_table


def main() -> None:
    arch = get_architecture("Milan B")
    corpus = build_corpus("tiny", seed=0)
    rng = np.random.default_rng(0)
    idx = rng.permutation(len(corpus))
    train = [corpus[i] for i in idx[: 2 * len(corpus) // 3]]
    test = [corpus[i] for i in idx[2 * len(corpus) // 3:]]

    print(f"sweeping {len(train)} training matrices on {arch.name} ...")
    sweep = run_sweep(train, [arch], list(REORDERINGS),
                      cache=OrderingCache())
    feats, labels = NearestCentroidPredictor.labels_from_sweep(
        sweep, train, "1d", arch.name)
    model = NearestCentroidPredictor().fit(feats, labels)
    print(f"training labels: { {l: labels.count(l) for l in set(labels)} }")

    # evaluate on held-out matrices: does the predicted ordering come
    # close to the best achievable speedup?
    test_sweep = run_sweep(test, [arch], list(REORDERINGS),
                           cache=OrderingCache())
    rows = []
    regrets = []
    for entry in test:
        perf = {"original": test_sweep.lookup(
            entry.name, "original", "1d", arch.name).gflops_max}
        for o in REORDERINGS:
            perf[o] = test_sweep.lookup(entry.name, o, "1d",
                                        arch.name).gflops_max
        truth = max(perf, key=perf.get)
        learned = model.predict(extract_features(entry.matrix))
        rule = recommend_ordering(entry.matrix, nthreads=arch.threads)
        regret = perf[truth] / perf[learned]
        regrets.append(regret)
        rows.append([entry.name, truth, learned, rule,
                     f"{regret:.2f}x"])
    print(format_table(
        ["matrix", "actual best", "learned pick", "rule pick",
         "best/learned"], rows))
    print(f"\nmean regret of the learned predictor: "
          f"{np.mean(regrets):.2f}x (1.00x = always picked the best)")


if __name__ == "__main__":
    main()
